// Minimal BGP-4 (RFC 4271) update model: enough of the path-attribute
// machinery to carry the DISCS-Ad as an optional transitive attribute
// (paper §IV-B) through ASes that do not understand it, with byte-exact
// attribute encoding so legacy handling (retain + forward) is honest.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace discs {

/// BGP path-attribute flag bits (RFC 4271 §4.3).
inline constexpr std::uint8_t kAttrFlagOptional = 0x80;
inline constexpr std::uint8_t kAttrFlagTransitive = 0x40;
inline constexpr std::uint8_t kAttrFlagPartial = 0x20;
inline constexpr std::uint8_t kAttrFlagExtendedLength = 0x10;

/// Well-known / assigned attribute type codes used by the simulator.
inline constexpr std::uint8_t kAttrTypeOrigin = 1;
inline constexpr std::uint8_t kAttrTypeAsPath = 2;
inline constexpr std::uint8_t kAttrTypeNextHop = 3;
/// DISCS-Ad type code. Unassigned in the IANA registry; the paper leaves the
/// allocation open, we pick a value from the unassigned range.
inline constexpr std::uint8_t kAttrTypeDiscsAd = 242;

/// A raw path attribute: flags, type and opaque value bytes.
struct PathAttribute {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  std::vector<std::uint8_t> value;

  [[nodiscard]] bool optional() const { return flags & kAttrFlagOptional; }
  [[nodiscard]] bool transitive() const { return flags & kAttrFlagTransitive; }

  /// Encodes per RFC 4271 §4.3 (extended length used when value > 255 B).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Decodes one attribute from `in`, advancing `offset`. nullopt on
  /// malformed input.
  static std::optional<PathAttribute> decode(std::span<const std::uint8_t> in,
                                             std::size_t& offset);

  friend bool operator==(const PathAttribute&, const PathAttribute&) = default;
};

/// The DISCS-Ad payload: origin DAS number plus its controller endpoint
/// (a domain name or address literal, paper §IV-B).
struct DiscsAd {
  AsNumber origin_as = kNoAs;
  std::string controller;  // e.g. "controller.as65001.example"

  /// Encodes as: 4-byte AS number, 1-byte name length, name bytes.
  [[nodiscard]] PathAttribute to_attribute() const;

  /// Parses a kAttrTypeDiscsAd attribute; nullopt if malformed or not a
  /// DISCS-Ad.
  static std::optional<DiscsAd> from_attribute(const PathAttribute& attr);

  friend bool operator==(const DiscsAd&, const DiscsAd&) = default;
};

/// A BGP update for one prefix (the simulator does not batch NLRI).
struct BgpUpdate {
  Prefix4 prefix;
  std::vector<AsNumber> as_path;  // leftmost = most recent AS
  std::vector<PathAttribute> attributes;  // non-AS-path attributes

  /// Finds the first attribute with `type`, nullptr when absent.
  [[nodiscard]] const PathAttribute* find_attribute(std::uint8_t type) const;

  /// Extracts the DISCS-Ad if one rides on this update.
  [[nodiscard]] std::optional<DiscsAd> discs_ad() const;

  friend bool operator==(const BgpUpdate&, const BgpUpdate&) = default;
};

}  // namespace discs

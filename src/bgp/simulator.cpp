#include "bgp/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace discs {

BgpSimulator::BgpSimulator(const AsGraph& graph) : graph_(graph) {}

RouteType BgpSimulator::classify(AsNumber node, AsNumber neighbor) const {
  const auto& customers = graph_.customers_of(node);
  if (std::find(customers.begin(), customers.end(), neighbor) != customers.end()) {
    return RouteType::kCustomer;
  }
  const auto& peers = graph_.peers_of(node);
  if (std::find(peers.begin(), peers.end(), neighbor) != peers.end()) {
    return RouteType::kPeer;
  }
  return RouteType::kProvider;
}

bool BgpSimulator::prefer(const Route& candidate, const Route& incumbent) {
  if (candidate.type != incumbent.type) return candidate.type < incumbent.type;
  if (candidate.as_path.size() != incumbent.as_path.size()) {
    return candidate.as_path.size() < incumbent.as_path.size();
  }
  return candidate.learned_from < incumbent.learned_from;
}

void BgpSimulator::originate(AsNumber as, const Prefix4& prefix,
                             std::vector<PathAttribute> attributes) {
  const auto idx = graph_.index_of(as);
  if (!idx) throw std::invalid_argument("originate: unknown AS");

  auto& state = prefixes_[prefix];
  if (state.nodes.empty()) state.nodes.resize(graph_.as_count());
  if (state.originator != kNoAs && state.originator != as) {
    throw std::invalid_argument("originate: prefix already owned by another AS");
  }
  state.originator = as;

  NodeState& node = state.nodes[*idx];
  ++node.origination_count;
  Route self;
  // The origin AS is prepended at export time, so the initial self route has
  // an empty path. Re-originations prepend the origin once more (paper
  // §IV-B): the path visibly changes, so neighbors re-install and re-export,
  // spreading the new attributes without affecting reachability.
  self.as_path.assign(node.origination_count - 1, as);
  self.attributes = std::move(attributes);
  self.learned_from = kNoAs;
  self.type = RouteType::kCustomer;  // self routes rank like customer routes
  node.best = std::move(self);
  export_route(state, prefix, *idx);
  run_queue();
}

void BgpSimulator::export_route(PrefixState& state, const Prefix4& prefix,
                                std::size_t node) {
  const AsNumber as = graph_.ases()[node];
  NodeState& ns = state.nodes[node];
  const Route& route = *ns.best;

  // Gao-Rexford export: routes learned from customers (or self-originated)
  // go to everyone; peer/provider routes go to customers only.
  const bool to_everyone = route.type == RouteType::kCustomer;
  std::vector<AsNumber> targets;
  auto send = [&](AsNumber neighbor) {
    // Poison-reverse-lite: do not echo a route back to its sender.
    if (neighbor == route.learned_from) return;
    Route exported = route;
    exported.as_path.insert(exported.as_path.begin(), as);
    // learned_from/type are rewritten on receipt.
    queue_.push_back({as, neighbor, prefix, std::move(exported)});
    targets.push_back(neighbor);
  };
  for (AsNumber c : graph_.customers_of(as)) send(c);
  if (to_everyone) {
    for (AsNumber p : graph_.peers_of(as)) send(p);
    for (AsNumber p : graph_.providers_of(as)) send(p);
  }

  // Withdraw from neighbors that held the previous export but are no
  // longer targeted (e.g. the best route degraded from customer to
  // provider type).
  for (AsNumber old_target : ns.adj_out) {
    if (std::find(targets.begin(), targets.end(), old_target) == targets.end()) {
      queue_.push_back({as, old_target, prefix, std::nullopt});
    }
  }
  ns.adj_out = std::move(targets);
}

void BgpSimulator::withdraw_exports(PrefixState& state, const Prefix4& prefix,
                                    std::size_t node) {
  NodeState& ns = state.nodes[node];
  const AsNumber as = graph_.ases()[node];
  for (AsNumber target : ns.adj_out) {
    queue_.push_back({as, target, prefix, std::nullopt});
  }
  ns.adj_out.clear();
}

void BgpSimulator::select_and_export(PrefixState& state, const Prefix4& prefix,
                                     std::size_t node) {
  NodeState& ns = state.nodes[node];
  if (ns.origination_count > 0) return;  // originator keeps its self route

  const Route* best = nullptr;
  for (const auto& [neighbor, route] : ns.adj_in) {
    if (best == nullptr || prefer(route, *best)) best = &route;
  }
  const bool changed = [&] {
    if (best == nullptr) return ns.best.has_value();
    if (!ns.best) return true;
    return best->as_path != ns.best->as_path ||
           best->learned_from != ns.best->learned_from ||
           !(best->attributes == ns.best->attributes);
  }();
  if (!changed) return;
  if (best == nullptr) {
    ns.best.reset();
    withdraw_exports(state, prefix, node);
    return;
  }
  ns.best = *best;
  export_route(state, prefix, node);
}

void BgpSimulator::withdraw(AsNumber as, const Prefix4& prefix) {
  const auto it = prefixes_.find(prefix);
  if (it == prefixes_.end() || it->second.originator != as) {
    throw std::invalid_argument("withdraw: prefix not originated by this AS");
  }
  const auto idx = graph_.index_of(as);
  PrefixState& state = it->second;
  NodeState& node = state.nodes[*idx];
  node.origination_count = 0;
  node.best.reset();
  state.originator = kNoAs;
  withdraw_exports(state, prefix, *idx);
  run_queue();
}

void BgpSimulator::run_queue() {
  while (queue_head_ < queue_.size()) {
    Pending msg = std::move(queue_[queue_head_++]);
    ++updates_;
    auto& state = prefixes_.at(msg.prefix);
    const auto to_idx = graph_.index_of(msg.to);
    if (!to_idx) continue;
    NodeState& ns = state.nodes[*to_idx];

    if (!msg.route) {
      ns.adj_in.erase(msg.from);
      select_and_export(state, msg.prefix, *to_idx);
      continue;
    }
    Route route = std::move(*msg.route);
    // Loop prevention: drop updates whose AS path already contains us.
    if (std::find(route.as_path.begin(), route.as_path.end(), msg.to) !=
        route.as_path.end()) {
      continue;
    }
    route.learned_from = msg.from;
    route.type = classify(msg.to, msg.from);
    ns.adj_in[msg.from] = std::move(route);
    select_and_export(state, msg.prefix, *to_idx);
  }
  queue_.clear();
  queue_head_ = 0;
}

const BgpSimulator::Route* BgpSimulator::best_route(AsNumber as,
                                                    const Prefix4& prefix) const {
  const auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return nullptr;
  const auto idx = graph_.index_of(as);
  if (!idx) return nullptr;
  const auto& best = it->second.nodes[*idx].best;
  return best ? &*best : nullptr;
}

std::vector<DiscsAd> BgpSimulator::ads_seen(AsNumber as) const {
  std::vector<DiscsAd> ads;
  const auto idx = graph_.index_of(as);
  if (!idx) return ads;
  for (const auto& [prefix, state] : prefixes_) {
    const auto& best = state.nodes[*idx].best;
    if (!best) continue;
    for (const auto& attr : best->attributes) {
      if (auto ad = DiscsAd::from_attribute(attr)) ads.push_back(*ad);
    }
  }
  return ads;
}

std::size_t BgpSimulator::coverage(const Prefix4& prefix) const {
  const auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return 0;
  std::size_t n = 0;
  for (const auto& node : it->second.nodes) n += node.best.has_value();
  return n;
}

}  // namespace discs

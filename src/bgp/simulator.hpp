// BGP propagation simulator: floods updates over an AsGraph with
// Gao-Rexford export policies and RFC 4271 route selection, carrying
// optional transitive attributes (the DISCS-Ad) through legacy ASes
// unchanged — which is precisely what makes the paper's discovery mechanism
// incrementally deployable.
//
// The model is message-level and deterministic: updates propagate through a
// FIFO queue until convergence; every AS keeps an Adj-RIB-In per neighbor
// and a Loc-RIB best route per prefix.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/message.hpp"
#include "topology/graph.hpp"

namespace discs {

class BgpSimulator {
 public:
  /// The graph must outlive the simulator.
  explicit BgpSimulator(const AsGraph& graph);

  /// A route as installed in a Loc-RIB.
  struct Route {
    std::vector<AsNumber> as_path;              // leftmost = nearest AS
    std::vector<PathAttribute> attributes;      // incl. any DISCS-Ad
    AsNumber learned_from = kNoAs;              // kNoAs for self-originated
    RouteType type = RouteType::kCustomer;      // relationship to sender
  };

  /// (Re-)originates `prefix` from `as` with the given extra attributes and
  /// floods to convergence. Re-originating an existing prefix models the
  /// paper's "prepend the origin AS" trick: the AS path gains a prepended
  /// origin so the update modifies Loc-RIBs everywhere without changing
  /// reachability.
  void originate(AsNumber as, const Prefix4& prefix,
                 std::vector<PathAttribute> attributes);

  /// Withdraws `prefix` at its originator and propagates the withdrawal to
  /// convergence (nodes fall back to alternative Adj-RIB-In routes where
  /// they exist). Throws if `as` is not the prefix's originator.
  void withdraw(AsNumber as, const Prefix4& prefix);

  /// Best route of `as` for `prefix`; nullptr when none.
  [[nodiscard]] const Route* best_route(AsNumber as, const Prefix4& prefix) const;

  /// All DISCS-Ads visible in `as`'s Loc-RIB (at most one per prefix).
  [[nodiscard]] std::vector<DiscsAd> ads_seen(AsNumber as) const;

  /// Number of ASes whose Loc-RIB holds a route for `prefix`.
  [[nodiscard]] std::size_t coverage(const Prefix4& prefix) const;

  /// Total update messages processed since construction (cost accounting).
  [[nodiscard]] std::uint64_t updates_processed() const { return updates_; }

 private:
  struct NodeState {
    // Neighbor ASN -> route advertised by that neighbor.
    std::map<AsNumber, Route> adj_in;
    std::optional<Route> best;
    // Neighbors our current best route was exported to (Adj-RIB-Out); used
    // to target withdrawals when the route disappears.
    std::vector<AsNumber> adj_out;
    std::size_t origination_count = 0;  // times this node originated it
  };
  struct PrefixState {
    std::vector<NodeState> nodes;  // indexed like the graph
    AsNumber originator = kNoAs;
  };

  /// Relationship of `neighbor` from `node`'s point of view.
  [[nodiscard]] RouteType classify(AsNumber node, AsNumber neighbor) const;

  /// Returns true when `candidate` beats `incumbent` under customer > peer >
  /// provider, then shortest AS path, then lowest neighbor ASN.
  [[nodiscard]] static bool prefer(const Route& candidate, const Route& incumbent);

  /// Re-runs selection for `node`; if the best route changed, exports it.
  void select_and_export(PrefixState& state, const Prefix4& prefix,
                         std::size_t node);

  void export_route(PrefixState& state, const Prefix4& prefix, std::size_t node);

  /// Sends withdrawals to everything in the node's Adj-RIB-Out.
  void withdraw_exports(PrefixState& state, const Prefix4& prefix,
                        std::size_t node);

  void run_queue();

  struct Pending {
    AsNumber from;
    AsNumber to;
    Prefix4 prefix;
    std::optional<Route> route;  // nullopt = withdraw from this neighbor
  };

  const AsGraph& graph_;
  std::map<Prefix4, PrefixState> prefixes_;
  std::vector<Pending> queue_;
  std::size_t queue_head_ = 0;
  std::uint64_t updates_ = 0;
};

}  // namespace discs

// FlowStream contract tests: the chunked-RNG determinism that bench_scale's
// resumable soak leans on (chunk i is a pure function of (dataset, config,
// seed, i), regenerable in any order), plus the flow-population invariants
// (addresses drawn from the configured ASes, Zipf head dominating).
#include "attack/stream.hpp"

#include <gtest/gtest.h>

#include <map>
#include <variant>
#include <vector>

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }

InternetDataset small_internet() {
  return InternetDataset({
      {pfx("10.0.0.0/8"), {1}},
      {pfx("11.0.0.0/8"), {1}},
      {pfx("12.0.0.0/8"), {1}},
      {pfx("13.0.0.0/8"), {2}},
      {pfx("14.0.0.0/8"), {3}},
  });
}

StreamConfig small_config() {
  StreamConfig cfg;
  cfg.flows = 1024;
  cfg.chunk_size = 256;
  return cfg;
}

std::vector<std::uint8_t> wire(const BatchPacket& p) {
  return std::visit([](const auto& pkt) { return pkt.serialize(); }, p);
}

std::vector<std::vector<std::uint8_t>> chunk_bytes(
    const FlowStream& stream, std::uint64_t index,
    std::vector<BatchPacket>& scratch) {
  stream.fill_chunk(index, scratch);
  std::vector<std::vector<std::uint8_t>> bytes;
  bytes.reserve(scratch.size());
  for (const BatchPacket& p : scratch) bytes.push_back(wire(p));
  return bytes;
}

TEST(FlowStreamTest, ChunksAreBitReproducibleInAnyOrder) {
  const auto ds = small_internet();
  const FlowStream stream(ds, 1, 2, small_config(), 42);
  std::vector<BatchPacket> scratch;
  const auto first = chunk_bytes(stream, 5, scratch);
  ASSERT_EQ(first.size(), small_config().chunk_size);
  // Regenerating other chunks in between must not perturb chunk 5.
  (void)chunk_bytes(stream, 0, scratch);
  (void)chunk_bytes(stream, 9, scratch);
  EXPECT_EQ(chunk_bytes(stream, 5, scratch), first);
  // A separately constructed stream with the same inputs agrees...
  const FlowStream twin(ds, 1, 2, small_config(), 42);
  EXPECT_EQ(chunk_bytes(twin, 5, scratch), first);
  // ...and a different seed or chunk index does not.
  const FlowStream other(ds, 1, 2, small_config(), 43);
  EXPECT_NE(chunk_bytes(other, 5, scratch), first);
  EXPECT_NE(chunk_bytes(stream, 6, scratch), first);
}

TEST(FlowStreamTest, FlowsDrawFromTheConfiguredAses) {
  const auto ds = small_internet();
  const FlowStream stream(ds, 1, 2, small_config(), 7);
  EXPECT_EQ(stream.flow_count(), small_config().flows);
  EXPECT_GT(stream.memory_bytes(), 0u);
  std::vector<BatchPacket> chunk;
  stream.fill_chunk(0, chunk);
  for (const BatchPacket& p : chunk) {
    const auto& v4 = std::get<Ipv4Packet>(p);
    EXPECT_EQ(ds.origin_of(v4.header.src), 1u);
    EXPECT_EQ(ds.origin_of(v4.header.dst), 2u);
  }
}

TEST(FlowStreamTest, ZipfHeadFlowDominatesTheChunks) {
  const auto ds = small_internet();
  const FlowStream stream(ds, 1, 2, small_config(), 11);
  const auto [hot_src, hot_dst] = stream.flow(1);
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> counts;
  std::vector<BatchPacket> chunk;
  std::size_t total = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    stream.fill_chunk(i, chunk);
    for (const BatchPacket& p : chunk) {
      const auto& v4 = std::get<Ipv4Packet>(p);
      ++counts[{v4.header.src.bits(), v4.header.dst.bits()}];
      ++total;
    }
  }
  std::size_t best = 0;
  std::pair<std::uint32_t, std::uint32_t> best_flow{};
  for (const auto& [flow, n] : counts) {
    if (n > best) {
      best = n;
      best_flow = flow;
    }
  }
  // Rank 1 is the hottest flow, far above the uniform 1/flows share — but
  // the distribution must still have a tail: many distinct flows appear and
  // the head doesn't swallow the stream (a degenerate sampler that always
  // returns rank 1 fails here).
  EXPECT_EQ(best_flow.first, hot_src.bits());
  EXPECT_EQ(best_flow.second, hot_dst.bits());
  EXPECT_GT(double(best) / double(total),
            10.0 / double(small_config().flows));
  EXPECT_LT(double(best) / double(total), 0.6);
  EXPECT_GT(counts.size(), 50u);
}

}  // namespace
}  // namespace discs

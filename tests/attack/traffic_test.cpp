#include "attack/traffic.hpp"

#include <gtest/gtest.h>

#include "topology/synthetic.hpp"

#include <map>

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }

InternetDataset small_internet() {
  // AS 1 owns 3/4 of the space, AS 2 and 3 one eighth each.
  return InternetDataset({
      {pfx("10.0.0.0/8"), {1}},
      {pfx("11.0.0.0/8"), {1}},
      {pfx("12.0.0.0/8"), {1}},
      {pfx("13.0.0.0/8"), {2}},
      {pfx("14.0.0.0/8"), {3}},
  });
}

TEST(TrafficSamplerTest, SampleAsFollowsSpaceRatios) {
  const auto ds = small_internet();
  TrafficSampler sampler(ds, 42);
  std::map<AsNumber, int> counts;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample_as()];
  EXPECT_NEAR(double(counts[1]) / kDraws, 0.6, 0.02);
  EXPECT_NEAR(double(counts[2]) / kDraws, 0.2, 0.02);
  EXPECT_NEAR(double(counts[3]) / kDraws, 0.2, 0.02);
}

TEST(TrafficSamplerTest, SampledAddressesBelongToTheAs) {
  const auto ds = small_internet();
  TrafficSampler sampler(ds, 1);
  for (int i = 0; i < 500; ++i) {
    const AsNumber as = sampler.sample_as();
    const auto addr = sampler.sample_address(as);
    EXPECT_EQ(ds.origin_of(addr), as);
  }
}

TEST(TrafficSamplerTest, AddressesSpreadAcrossPrefixes) {
  const auto ds = small_internet();
  TrafficSampler sampler(ds, 7);
  std::map<std::uint32_t, int> first_octets;
  for (int i = 0; i < 300; ++i) {
    ++first_octets[sampler.sample_address(1).bits() >> 24];
  }
  // AS 1 has three /8s; all should receive samples.
  EXPECT_EQ(first_octets.size(), 3u);
}

TEST(TrafficSamplerTest, FlowRolesAreDistinct) {
  const auto ds = small_internet();
  TrafficSampler sampler(ds, 3);
  for (int i = 0; i < 200; ++i) {
    const auto flow = sampler.sample_flow(AttackType::kDirect);
    EXPECT_NE(flow.agent, flow.innocent);
    EXPECT_NE(flow.agent, flow.victim);
    EXPECT_NE(flow.innocent, flow.victim);
  }
}

TEST(TrafficSamplerTest, DirectAttackPacketAddressing) {
  const auto ds = small_internet();
  TrafficSampler sampler(ds, 5);
  const SpoofFlow flow{1, 2, 3, AttackType::kDirect};
  for (int i = 0; i < 50; ++i) {
    const auto pkt = sampler.attack_packet(flow);
    EXPECT_EQ(ds.origin_of(pkt.header.src), 2u);  // spoofed innocent
    EXPECT_EQ(ds.origin_of(pkt.header.dst), 3u);  // victim
    EXPECT_TRUE(pkt.checksum_valid());
  }
}

TEST(TrafficSamplerTest, ReflectionAttackPacketAddressing) {
  const auto ds = small_internet();
  TrafficSampler sampler(ds, 5);
  const SpoofFlow flow{1, 2, 3, AttackType::kReflection};
  for (int i = 0; i < 50; ++i) {
    const auto pkt = sampler.attack_packet(flow);
    EXPECT_EQ(ds.origin_of(pkt.header.src), 3u);  // spoofed victim source
    EXPECT_EQ(ds.origin_of(pkt.header.dst), 2u);  // reflector
  }
}

TEST(TrafficSamplerTest, LegitPacketUsesRealSource) {
  const auto ds = small_internet();
  TrafficSampler sampler(ds, 5);
  const auto pkt = sampler.legit_packet(2, 3);
  EXPECT_EQ(ds.origin_of(pkt.header.src), 2u);
  EXPECT_EQ(ds.origin_of(pkt.header.dst), 3u);
}

TEST(TrafficSamplerTest, DeterministicUnderSeed) {
  const auto ds = small_internet();
  TrafficSampler a(ds, 9), b(ds, 9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.sample_as(), b.sample_as());
  }
}

TEST(TrafficSamplerTest, WorksAtSnapshotScaleSample) {
  // Alias table over ~44k ASes builds fast and samples correctly.
  SyntheticConfig cfg;
  cfg.num_ases = 2000;
  cfg.num_prefixes = 20000;
  const auto ds = generate_dataset(cfg);
  TrafficSampler sampler(ds, 11);
  double top_ratio = 0;
  const auto order = ds.ases_by_space_desc();
  for (std::size_t i = 0; i < 20; ++i) top_ratio += ds.ratio(order[i]);
  int top_hits = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const AsNumber as = sampler.sample_as();
    for (std::size_t j = 0; j < 20; ++j) {
      if (order[j] == as) {
        ++top_hits;
        break;
      }
    }
  }
  EXPECT_NEAR(double(top_hits) / kDraws, top_ratio, 0.02);
}

}  // namespace
}  // namespace discs

#include "topology/dataset.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace discs {
namespace {

Prefix4 pfx(const char* text) { return *Prefix4::parse(text); }
Ipv4Address ip(const char* text) { return *Ipv4Address::parse(text); }

TEST(InternetDatasetTest, SingleAsOwnsEverything) {
  InternetDataset ds({{pfx("10.0.0.0/8"), {65001}}});
  EXPECT_EQ(ds.as_count(), 1u);
  EXPECT_DOUBLE_EQ(ds.address_space(65001), double(1 << 24));
  EXPECT_DOUBLE_EQ(ds.ratio(65001), 1.0);
  EXPECT_EQ(ds.origin_of(ip("10.1.2.3")), 65001u);
  EXPECT_EQ(ds.origin_of(ip("11.0.0.1")), kNoAs);
}

TEST(InternetDatasetTest, MoreSpecificCarvesSpaceOut) {
  InternetDataset ds({
      {pfx("10.0.0.0/8"), {1}},
      {pfx("10.1.0.0/16"), {2}},
  });
  EXPECT_DOUBLE_EQ(ds.address_space(1), double(1 << 24) - double(1 << 16));
  EXPECT_DOUBLE_EQ(ds.address_space(2), double(1 << 16));
  EXPECT_EQ(ds.origin_of(ip("10.1.0.5")), 2u);
  EXPECT_EQ(ds.origin_of(ip("10.2.0.5")), 1u);
}

TEST(InternetDatasetTest, NestedGrandchildSubtractsFromChildOnly) {
  InternetDataset ds({
      {pfx("10.0.0.0/8"), {1}},
      {pfx("10.1.0.0/16"), {2}},
      {pfx("10.1.2.0/24"), {3}},
  });
  EXPECT_DOUBLE_EQ(ds.address_space(1), double(1 << 24) - double(1 << 16));
  EXPECT_DOUBLE_EQ(ds.address_space(2), double(1 << 16) - 256.0);
  EXPECT_DOUBLE_EQ(ds.address_space(3), 256.0);
}

TEST(InternetDatasetTest, MultiOriginSplitsSpaceEvenly) {
  InternetDataset ds({
      {pfx("10.0.0.0/24"), {1, 2}},
      {pfx("11.0.0.0/24"), {3}},
  });
  EXPECT_DOUBLE_EQ(ds.address_space(1), 128.0);
  EXPECT_DOUBLE_EQ(ds.address_space(2), 128.0);
  EXPECT_DOUBLE_EQ(ds.address_space(3), 256.0);
  // LPM origin resolution reports the first origin; origins_of reports all.
  EXPECT_EQ(ds.origin_of(ip("10.0.0.7")), 1u);
  EXPECT_EQ(ds.origins_of(ip("10.0.0.7")), (std::vector<AsNumber>{1, 2}));
}

TEST(InternetDatasetTest, FullyShadowedAsGetsOneAddress) {
  // AS 1's /24 is entirely covered by AS 2's two /25s -> effective space 0,
  // manipulated to 1 (paper §VI-A2).
  InternetDataset ds({
      {pfx("10.0.0.0/24"), {1}},
      {pfx("10.0.0.0/25"), {2}},
      {pfx("10.0.0.128/25"), {2}},
  });
  EXPECT_DOUBLE_EQ(ds.address_space(1), 1.0);
  EXPECT_DOUBLE_EQ(ds.address_space(2), 256.0);
  EXPECT_DOUBLE_EQ(ds.total_space(), 257.0);
}

TEST(InternetDatasetTest, DuplicatePrefixesMergeOrigins) {
  InternetDataset ds({
      {pfx("10.0.0.0/24"), {1}},
      {pfx("10.0.0.0/24"), {2}},
      {pfx("10.0.0.0/24"), {1}},
  });
  EXPECT_EQ(ds.prefix_count(), 1u);
  EXPECT_DOUBLE_EQ(ds.address_space(1), 128.0);
  EXPECT_DOUBLE_EQ(ds.address_space(2), 128.0);
}

TEST(InternetDatasetTest, OwnershipCheck) {
  InternetDataset ds({
      {pfx("10.0.0.0/8"), {1}},
      {pfx("10.1.0.0/16"), {2}},
  });
  EXPECT_TRUE(ds.owns(1, pfx("10.2.0.0/16")));
  EXPECT_TRUE(ds.owns(1, pfx("10.0.0.0/8")));
  EXPECT_TRUE(ds.owns(2, pfx("10.1.128.0/17")));
  EXPECT_FALSE(ds.owns(1, pfx("10.1.128.0/17")));  // carved out by AS 2
  EXPECT_FALSE(ds.owns(2, pfx("10.2.0.0/16")));
  EXPECT_FALSE(ds.owns(1, pfx("11.0.0.0/8")));     // unrouted
}

TEST(InternetDatasetTest, AsesBySpaceDescOrdersAndBreaksTies) {
  InternetDataset ds({
      {pfx("10.0.0.0/16"), {5}},
      {pfx("11.0.0.0/8"), {9}},
      {pfx("12.0.0.0/16"), {3}},
  });
  EXPECT_EQ(ds.ases_by_space_desc(), (std::vector<AsNumber>{9, 3, 5}));
}

TEST(InternetDatasetTest, RejectsEmptyTable) {
  EXPECT_THROW(InternetDataset({}), std::invalid_argument);
}

TEST(CaidaFormatTest, ParsesRealFormatLines) {
  std::istringstream in(
      "# typical routeviews prefix2as snapshot\n"
      "1.0.0.0\t24\t13335\n"
      "1.0.4.0\t22\t56203\n"
      "1.1.8.0\t24\t4134_4847\n"
      "\n"
      "1.2.3.0\t24\t2497,7660\n");
  auto ds = InternetDataset::load_caida(in);
  ASSERT_TRUE(ds.ok()) << ds.error().to_string();
  EXPECT_EQ(ds->prefix_count(), 4u);
  EXPECT_EQ(ds->origin_of(*Ipv4Address::parse("1.0.0.77")), 13335u);
  EXPECT_EQ(ds->origins_of(*Ipv4Address::parse("1.1.8.1")),
            (std::vector<AsNumber>{4134, 4847}));
  EXPECT_EQ(ds->origins_of(*Ipv4Address::parse("1.2.3.4")),
            (std::vector<AsNumber>{2497, 7660}));
}

TEST(CaidaFormatTest, ReportsMalformedLines) {
  std::istringstream bad_addr("1.0.0\t24\t13335\n");
  auto r1 = InternetDataset::load_caida(bad_addr);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.error().message.find("line 1"), std::string::npos);

  std::istringstream bad_len("1.0.0.0\t99\t13335\n");
  EXPECT_FALSE(InternetDataset::load_caida(bad_len).ok());

  std::istringstream bad_origin("1.0.0.0\t24\tAS13335\n");
  EXPECT_FALSE(InternetDataset::load_caida(bad_origin).ok());

  std::istringstream missing_fields("1.0.0.0 24 13335\n");
  EXPECT_FALSE(InternetDataset::load_caida(missing_fields).ok());

  std::istringstream empty("# only a comment\n");
  EXPECT_FALSE(InternetDataset::load_caida(empty).ok());
}

TEST(CaidaFormatTest, WriteLoadRoundTrip) {
  InternetDataset ds({
      {pfx("10.0.0.0/8"), {1}},
      {pfx("10.1.0.0/16"), {2, 7}},
      {pfx("192.168.0.0/24"), {3}},
  });
  std::ostringstream out;
  ds.write_caida(out);
  std::istringstream in(out.str());
  auto reload = InternetDataset::load_caida(in);
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->entries(), ds.entries());
  EXPECT_DOUBLE_EQ(reload->total_space(), ds.total_space());
}

TEST(InternetDatasetTest, RatiosSumToOne) {
  InternetDataset ds({
      {pfx("10.0.0.0/8"), {1}},
      {pfx("10.128.0.0/9"), {2}},
      {pfx("20.0.0.0/16"), {3, 4}},
  });
  double sum = 0;
  for (AsNumber as : ds.as_numbers()) sum += ds.ratio(as);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace discs

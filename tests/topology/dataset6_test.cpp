// IPv6 registry tests (§V-F control-plane support): ownership oracle,
// origin resolution, and the synthetic v6 allocation.
#include <gtest/gtest.h>

#include <sstream>

#include "topology/synthetic.hpp"

namespace discs {
namespace {

Prefix4 pfx4(const char* t) { return *Prefix4::parse(t); }
Prefix6 pfx6(const char* t) { return *Prefix6::parse(t); }
Ipv6Address ip6(const char* t) { return *Ipv6Address::parse(t); }

InternetDataset dual_stack() {
  return InternetDataset(
      {{pfx4("10.0.0.0/8"), {1}}, {pfx4("20.0.0.0/8"), {2}}},
      {{pfx6("2001:db8:1::/48"), {1}},
       {pfx6("2001:db8:2::/48"), {2}},
       {pfx6("2001:db8:3::/48"), {1, 2}}});
}

TEST(DatasetV6Test, OriginResolution) {
  const auto ds = dual_stack();
  EXPECT_EQ(ds.origin_of(ip6("2001:db8:1::42")), 1u);
  EXPECT_EQ(ds.origin_of(ip6("2001:db8:2::42")), 2u);
  EXPECT_EQ(ds.origin_of(ip6("2001:db8:9::42")), kNoAs);
}

TEST(DatasetV6Test, OwnershipOracle) {
  const auto ds = dual_stack();
  EXPECT_TRUE(ds.owns(1, pfx6("2001:db8:1::/48")));
  EXPECT_TRUE(ds.owns(1, pfx6("2001:db8:1:5::/64")));  // more specific
  EXPECT_FALSE(ds.owns(2, pfx6("2001:db8:1::/48")));
  EXPECT_FALSE(ds.owns(1, pfx6("2001:db8::/32")));  // broader than owned
  EXPECT_FALSE(ds.owns(1, pfx6("2001:db9::/48")));  // unrouted
  // MOAS v6 prefix: both co-owners pass the check.
  EXPECT_TRUE(ds.owns(1, pfx6("2001:db8:3::/48")));
  EXPECT_TRUE(ds.owns(2, pfx6("2001:db8:3::/48")));
}

TEST(DatasetV6Test, PrefixesOfAs) {
  const auto ds = dual_stack();
  EXPECT_EQ(ds.prefixes6_of(1).size(), 2u);  // own /48 + MOAS /48
  EXPECT_EQ(ds.prefixes6_of(2).size(), 2u);
  EXPECT_TRUE(ds.prefixes6_of(7).empty());
}

TEST(DatasetV6Test, V6DoesNotAffectSpaceRatios) {
  const auto with_v6 = dual_stack();
  const InternetDataset without_v6(
      {{pfx4("10.0.0.0/8"), {1}}, {pfx4("20.0.0.0/8"), {2}}});
  EXPECT_DOUBLE_EQ(with_v6.ratio(1), without_v6.ratio(1));
  EXPECT_DOUBLE_EQ(with_v6.total_space(), without_v6.total_space());
}

TEST(DatasetV6Test, DuplicateV6PrefixesMergeOrigins) {
  const InternetDataset ds({{pfx4("10.0.0.0/8"), {1}}},
                           {{pfx6("2001:db8::/32"), {1}},
                            {pfx6("2001:db8::/32"), {2}}});
  EXPECT_EQ(ds.entries6().size(), 1u);
  EXPECT_TRUE(ds.owns(1, pfx6("2001:db8::/32")));
  EXPECT_TRUE(ds.owns(2, pfx6("2001:db8::/32")));
}

TEST(CaidaV6FormatTest, WriteLoadRoundTrip) {
  const auto ds = dual_stack();
  std::ostringstream out;
  ds.write_caida6(out);
  std::istringstream in(out.str());
  const auto reloaded = InternetDataset::load_caida6(in);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().to_string();
  EXPECT_EQ(*reloaded, ds.entries6());
}

TEST(CaidaV6FormatTest, ParsesRealFormatLines) {
  std::istringstream in(
      "# routeviews6 style\n"
      "2001:200::\t32\t2500\n"
      "2001:218::\t32\t2914_65001\n");
  const auto entries = InternetDataset::load_caida6(in);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].prefix.to_string(), "2001:200::/32");
  EXPECT_EQ((*entries)[1].origins, (std::vector<AsNumber>{2914, 65001}));
}

TEST(CaidaV6FormatTest, ReportsMalformedLines) {
  std::istringstream bad_addr("zzzz::\t32\t1\n");
  EXPECT_FALSE(InternetDataset::load_caida6(bad_addr).ok());
  std::istringstream bad_len("2001:db8::\t200\t1\n");
  EXPECT_FALSE(InternetDataset::load_caida6(bad_len).ok());
  std::istringstream bad_origin("2001:db8::\t32\tAS1\n");
  EXPECT_FALSE(InternetDataset::load_caida6(bad_origin).ok());
}

TEST(SyntheticV6Test, EveryAsGetsASlash32) {
  SyntheticConfig cfg;
  cfg.num_ases = 300;
  cfg.num_prefixes = 3000;
  const auto ds = generate_dataset(cfg);
  EXPECT_EQ(ds.entries6().size(), 300u);
  for (AsNumber as : {AsNumber{1}, AsNumber{150}, AsNumber{300}}) {
    const auto prefixes = ds.prefixes6_of(as);
    ASSERT_EQ(prefixes.size(), 1u) << as;
    EXPECT_EQ(prefixes[0].length(), 32u);
    EXPECT_EQ(ds.origin_of(prefixes[0].address()), as);
  }
}

TEST(SyntheticV6Test, AllocationsAreDisjoint) {
  SyntheticConfig cfg;
  cfg.num_ases = 200;
  cfg.num_prefixes = 2000;
  const auto entries = generate_internet6(cfg);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_FALSE(entries[i - 1].prefix.covers(entries[i].prefix));
    EXPECT_FALSE(entries[i].prefix.covers(entries[i - 1].prefix));
  }
}

}  // namespace
}  // namespace discs

#include "topology/synthetic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace discs {
namespace {

SyntheticConfig small_config() {
  SyntheticConfig cfg;
  cfg.num_ases = 500;
  cfg.num_prefixes = 5000;
  cfg.seed = 7;
  return cfg;
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  const auto a = generate_internet(small_config());
  const auto b = generate_internet(small_config());
  EXPECT_EQ(a, b);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const auto a = generate_internet(cfg);
  cfg.seed = 8;
  const auto b = generate_internet(cfg);
  EXPECT_NE(a, b);
}

TEST(SyntheticTest, EveryAsAppears) {
  const auto cfg = small_config();
  const auto ds = generate_dataset(cfg);
  EXPECT_EQ(ds.as_count(), cfg.num_ases);
  // ASNs are 1..N.
  EXPECT_EQ(ds.as_numbers().front(), 1u);
  EXPECT_EQ(ds.as_numbers().back(), cfg.num_ases);
}

TEST(SyntheticTest, PrefixCountNearTarget) {
  const auto cfg = small_config();
  const auto ds = generate_dataset(cfg);
  EXPECT_GT(ds.prefix_count(), cfg.num_prefixes * 8 / 10);
  EXPECT_LT(ds.prefix_count(), cfg.num_prefixes * 13 / 10);
}

TEST(SyntheticTest, PrefixLengthsWithinAnnouncementRange) {
  for (const auto& e : generate_internet(small_config())) {
    EXPECT_GE(e.prefix.length(), 8u);
    EXPECT_LE(e.prefix.length(), 24u);
  }
}

TEST(SyntheticTest, PrefixesAreDisjoint) {
  auto entries = generate_internet(small_config());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.prefix < b.prefix; });
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_FALSE(entries[i - 1].prefix.covers(entries[i].prefix))
        << entries[i - 1].prefix.to_string() << " covers "
        << entries[i].prefix.to_string();
  }
}

TEST(SyntheticTest, SpaceDistributionIsHeavyTailed) {
  const auto ds = generate_dataset(small_config());
  const auto order = ds.ases_by_space_desc();
  double top10 = 0;
  for (std::size_t i = 0; i < 10; ++i) top10 += ds.ratio(order[i]);
  // 2% of the ASes must hold far more than 2% of the space.
  EXPECT_GT(top10, 0.2);
}

TEST(SyntheticTest, MoasEntriesPresentAtConfiguredRate) {
  auto cfg = small_config();
  cfg.multi_origin_fraction = 0.2;
  const auto entries = generate_internet(cfg);
  std::size_t moas = 0;
  for (const auto& e : entries) moas += e.origins.size() > 1;
  const double rate = double(moas) / double(entries.size());
  EXPECT_NEAR(rate, 0.2, 0.05);
}

TEST(SyntheticTest, RejectsDegenerateConfig) {
  SyntheticConfig cfg;
  cfg.num_ases = 0;
  EXPECT_THROW(generate_internet(cfg), std::invalid_argument);
  cfg.num_ases = 100;
  cfg.num_prefixes = 10;
  EXPECT_THROW(generate_internet(cfg), std::invalid_argument);
}

// Calibration guard: at full snapshot scale the cumulative space shares of
// the largest ASes must sit near the values the paper's Figure 6 implies,
// because every reproduced curve in §VI is a function of these shares.
TEST(SyntheticTest, FullScaleCalibrationAnchors) {
  SyntheticConfig cfg;  // defaults = full snapshot scale
  const auto ds = generate_dataset(cfg);
  EXPECT_EQ(ds.as_count(), 44036u);
  const auto order = ds.ases_by_space_desc();
  double cum = 0;
  double c50 = 0, c200 = 0, c629 = 0;
  for (std::size_t i = 0; i < 629; ++i) {
    cum += ds.ratio(order[i]);
    if (i + 1 == 50) c50 = cum;
    if (i + 1 == 200) c200 = cum;
    if (i + 1 == 629) c629 = cum;
  }
  EXPECT_NEAR(c50, 0.42, 0.06);
  EXPECT_NEAR(c200, 0.65, 0.06);
  EXPECT_NEAR(c629, 0.80, 0.06);
}

}  // namespace
}  // namespace discs

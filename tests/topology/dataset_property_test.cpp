// Dataset invariant fuzz: for random overlapping prefix sets inside a small
// address window, the LPM-carved per-AS effective sizes must sum to exactly
// the number of routed addresses (brute-force counted), and origin_of must
// agree with a naive longest-match scan.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "topology/dataset.hpp"

namespace discs {
namespace {

class DatasetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DatasetProperty, EffectiveSpaceSumsToRoutedAddressCount) {
  Xoshiro256 rng(GetParam());
  // Prefixes confined to 10.0.0.0/16 so brute force over 65536 addresses is
  // cheap; lengths 16..26 guarantee heavy nesting.
  std::vector<PrefixOrigin> entries;
  const std::size_t count = 5 + rng.below(25);
  for (std::size_t k = 0; k < count; ++k) {
    const unsigned len = 16 + static_cast<unsigned>(rng.below(11));
    const std::uint32_t base =
        0x0a000000u | (static_cast<std::uint32_t>(rng.next()) & 0xffffu);
    const AsNumber as = 1 + static_cast<AsNumber>(rng.below(6));
    entries.push_back({Prefix4(Ipv4Address(base), len), {as}});
  }
  const InternetDataset ds(entries);

  // Brute force: walk every address in the window, find its longest match.
  std::map<AsNumber, double> brute_space;
  std::size_t routed = 0;
  for (std::uint32_t offset = 0; offset < 0x10000u; ++offset) {
    const Ipv4Address addr(0x0a000000u | offset);
    const Prefix4* best = nullptr;
    for (const auto& e : ds.entries()) {
      if (e.prefix.contains(addr) &&
          (best == nullptr || e.prefix.length() > best->length())) {
        best = &e.prefix;
      }
    }
    if (best == nullptr) continue;
    ++routed;
    // Find the entry again to get its origins (merged view).
    for (const auto& e : ds.entries()) {
      if (e.prefix == *best) {
        for (AsNumber as : e.origins) {
          brute_space[as] += 1.0 / static_cast<double>(e.origins.size());
        }
        // Also check origin_of agreement (first origin).
        EXPECT_EQ(ds.origin_of(addr), e.origins.front()) << addr.to_string();
        break;
      }
    }
  }

  double dataset_total = 0;
  for (AsNumber as : ds.as_numbers()) {
    const double expected =
        std::max(brute_space.count(as) ? brute_space[as] : 0.0, 1.0);
    EXPECT_NEAR(ds.address_space(as), expected, 1e-6) << "AS " << as;
    dataset_total += ds.address_space(as);
  }
  EXPECT_NEAR(ds.total_space(), dataset_total, 1e-6);
  // Total space >= routed addresses (zero-space manipulation may add 1s).
  EXPECT_GE(ds.total_space() + 1e-9, static_cast<double>(routed));
}

TEST_P(DatasetProperty, OwnershipConsistentWithOriginOf) {
  Xoshiro256 rng(GetParam() ^ 0x0dd);
  std::vector<PrefixOrigin> entries;
  for (int k = 0; k < 20; ++k) {
    const unsigned len = 16 + static_cast<unsigned>(rng.below(9));
    const std::uint32_t base =
        0x0a000000u | (static_cast<std::uint32_t>(rng.next()) & 0xffffu);
    entries.push_back(
        {Prefix4(Ipv4Address(base), len), {1 + static_cast<AsNumber>(rng.below(5))}});
  }
  const InternetDataset ds(entries);

  // owns(as, p) for a randomly probed sub-prefix must imply that every
  // address sampled inside p maps to an entry listing `as`... unless a
  // more-specific foreign prefix carves into p — in which case owns() must
  // have returned false. Probe the implication one way: owns == true =>
  // the LPM entry at p's base covers all of p.
  for (int probe = 0; probe < 200; ++probe) {
    const unsigned len = 18 + static_cast<unsigned>(rng.below(9));
    const Prefix4 p(
        Ipv4Address(0x0a000000u | (static_cast<std::uint32_t>(rng.next()) & 0xffffu)),
        len);
    for (AsNumber as = 1; as <= 5; ++as) {
      if (!ds.owns(as, p)) continue;
      // Sample addresses inside p: each must LPM to an entry whose origin
      // list includes `as` OR to a more specific prefix — but owns()'s
      // contract is that the covering entry includes as; more-specifics
      // inside p would make the base entry not cover p... they could still
      // exist deeper. Check the base address maps to as.
      const auto origins = ds.origins_of(p.address());
      EXPECT_TRUE(std::find(origins.begin(), origins.end(), as) != origins.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace discs

#include "topology/graph.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace discs {
namespace {

// A small reference topology:
//
//        1 ===== 2          (=== peering, tier-1)
//       / \       \ .
//      3   4       5        (/ . transit: upper = provider)
//     /     \     / \ .
//    6       7 = 8   9      (7 = 8 peering)
AsGraph reference_graph() {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_provider(3, 1);
  g.add_provider(4, 1);
  g.add_provider(5, 2);
  g.add_provider(6, 3);
  g.add_provider(7, 4);
  g.add_provider(8, 5);
  g.add_provider(9, 5);
  g.add_peering(7, 8);
  return g;
}

TEST(AsGraphTest, AdjacencyBookkeeping) {
  const auto g = reference_graph();
  EXPECT_EQ(g.as_count(), 9u);
  EXPECT_EQ(g.providers_of(6), (std::vector<AsNumber>{3}));
  EXPECT_EQ(g.customers_of(5), (std::vector<AsNumber>{8, 9}));
  EXPECT_EQ(g.peers_of(7), (std::vector<AsNumber>{8}));
  EXPECT_TRUE(g.contains(9));
  EXPECT_FALSE(g.contains(42));
}

TEST(AsGraphTest, RejectsSelfEdges) {
  AsGraph g;
  EXPECT_THROW(g.add_provider(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_peering(2, 2), std::invalid_argument);
}

TEST(AsGraphTest, CustomerRoutePreferredOverPeerAndProvider) {
  const auto g = reference_graph();
  // From 5 toward 8: 8 is a direct customer.
  const auto p = g.path(5, 8);
  EXPECT_EQ(p, (std::vector<AsNumber>{5, 8}));
}

TEST(AsGraphTest, PeerShortcutUsedWhenValleyFree) {
  const auto g = reference_graph();
  // 7 -> 8 can go via the lateral peering (7=8), which beats climbing to
  // tier-1 (7-4-1-2-5-8).
  const auto p = g.path(7, 8);
  EXPECT_EQ(p, (std::vector<AsNumber>{7, 8}));
}

TEST(AsGraphTest, ValleyFreePathThroughTier1) {
  const auto g = reference_graph();
  const auto p = g.path(6, 9);
  EXPECT_EQ(p, (std::vector<AsNumber>{6, 3, 1, 2, 5, 9}));
}

TEST(AsGraphTest, PeerRouteNotExportedToPeer) {
  // 6's path to 8 must not use 7's peering with 8 (valley-free forbids
  // peer->peer): 6 climbs to 1, crosses to 2, descends 5 -> 8.
  const auto g = reference_graph();
  const auto p = g.path(6, 8);
  EXPECT_EQ(p, (std::vector<AsNumber>{6, 3, 1, 2, 5, 8}));
}

TEST(AsGraphTest, PathToSelfIsSingleton) {
  const auto g = reference_graph();
  EXPECT_EQ(g.path(4, 4), (std::vector<AsNumber>{4}));
}

TEST(AsGraphTest, UnknownEndpointsYieldEmptyPath) {
  const auto g = reference_graph();
  EXPECT_TRUE(g.path(1, 77).empty());
  EXPECT_TRUE(g.path(77, 1).empty());
}

TEST(AsGraphTest, DisconnectedNodeUnreachable) {
  auto g = reference_graph();
  g.add_as(50);
  EXPECT_TRUE(g.path(50, 1).empty());
  const auto table = g.routes_to(50);
  const auto idx = g.index_of(1);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(table.next_hop[*idx], kNoAs);
}

TEST(AsGraphTest, RoutesToUnknownDestinationThrows) {
  const auto g = reference_graph();
  EXPECT_THROW(g.routes_to(1234), std::invalid_argument);
}

TEST(AsGraphTest, RouteTypesAreClassifiedCorrectly) {
  const auto g = reference_graph();
  const auto table = g.routes_to(8);
  auto type_of = [&](AsNumber as) { return table.type[*g.index_of(as)]; };
  EXPECT_EQ(type_of(5), RouteType::kCustomer);
  EXPECT_EQ(type_of(2), RouteType::kCustomer);
  EXPECT_EQ(type_of(7), RouteType::kPeer);
  EXPECT_EQ(type_of(1), RouteType::kPeer);   // via tier-1 peering with 2
  EXPECT_EQ(type_of(9), RouteType::kProvider);
  EXPECT_EQ(type_of(6), RouteType::kProvider);
}

TEST(GenerateGraphTest, DeterministicAndFullyConnected) {
  std::vector<AsNumber> order(300);
  std::iota(order.begin(), order.end(), 1);
  GraphConfig cfg;
  cfg.seed = 11;
  const auto g1 = generate_graph(order, cfg);
  const auto g2 = generate_graph(order, cfg);
  EXPECT_EQ(g1.as_count(), 300u);
  // Every AS reaches AS 1 (a tier-1) — the graph is a connected hierarchy.
  for (AsNumber as = 1; as <= 300; ++as) {
    EXPECT_FALSE(g1.path(as, 1).empty()) << "AS " << as;
    EXPECT_EQ(g1.path(as, 1), g2.path(as, 1));
  }
}

TEST(GenerateGraphTest, AllPairsReachableOnSample) {
  std::vector<AsNumber> order(120);
  std::iota(order.begin(), order.end(), 1);
  const auto g = generate_graph(order, GraphConfig{});
  for (AsNumber s = 1; s <= 120; s += 7) {
    for (AsNumber d = 1; d <= 120; d += 11) {
      EXPECT_FALSE(g.path(s, d).empty()) << s << " -> " << d;
    }
  }
}

TEST(GenerateGraphTest, EarlyAsesAccumulateCustomers) {
  std::vector<AsNumber> order(500);
  std::iota(order.begin(), order.end(), 1);
  const auto g = generate_graph(order, GraphConfig{});
  std::size_t tier1_customers = 0;
  for (AsNumber as = 1; as <= 10; ++as) {
    tier1_customers += g.customers_of(as).size();
  }
  std::size_t tail_customers = 0;
  for (AsNumber as = 491; as <= 500; ++as) {
    tail_customers += g.customers_of(as).size();
  }
  EXPECT_GT(tier1_customers, tail_customers * 3);
}

}  // namespace
}  // namespace discs

// Valley-free property test: every path the routing substrate produces must
// follow Gao-Rexford export rules — a sequence of zero or more "up" edges
// (customer->provider), at most one lateral peering edge, then zero or more
// "down" edges (provider->customer). No path may carry traffic "through a
// valley" (down or lateral, then up) because no AS transits for free.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "topology/graph.hpp"

namespace discs {
namespace {

enum class EdgeKind { kUp, kDown, kLateral, kNone };

EdgeKind classify_edge(const AsGraph& g, AsNumber from, AsNumber to) {
  const auto& providers = g.providers_of(from);
  if (std::find(providers.begin(), providers.end(), to) != providers.end()) {
    return EdgeKind::kUp;
  }
  const auto& customers = g.customers_of(from);
  if (std::find(customers.begin(), customers.end(), to) != customers.end()) {
    return EdgeKind::kDown;
  }
  const auto& peers = g.peers_of(from);
  if (std::find(peers.begin(), peers.end(), to) != peers.end()) {
    return EdgeKind::kLateral;
  }
  return EdgeKind::kNone;
}

::testing::AssertionResult is_valley_free(const AsGraph& g,
                                          const std::vector<AsNumber>& path) {
  // Phase 0: climbing. Phase 1: after the single lateral edge. Phase 2:
  // descending. Transitions allowed: 0->0 (up), 0->1 (lateral), 0/1->2
  // (down), 2->2 (down). Anything else is a valley.
  int phase = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const EdgeKind kind = classify_edge(g, path[i - 1], path[i]);
    switch (kind) {
      case EdgeKind::kNone:
        return ::testing::AssertionFailure()
               << "no edge " << path[i - 1] << " -> " << path[i];
      case EdgeKind::kUp:
        if (phase != 0) {
          return ::testing::AssertionFailure()
                 << "valley: up edge after lateral/down at hop " << i;
        }
        break;
      case EdgeKind::kLateral:
        if (phase != 0) {
          return ::testing::AssertionFailure()
                 << "second lateral / lateral after down at hop " << i;
        }
        phase = 1;
        break;
      case EdgeKind::kDown:
        phase = 2;
        break;
    }
  }
  return ::testing::AssertionSuccess();
}

class ValleyFreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValleyFreeProperty, AllSampledPathsAreValleyFree) {
  std::vector<AsNumber> order(250);
  std::iota(order.begin(), order.end(), 1);
  GraphConfig cfg;
  cfg.seed = GetParam();
  cfg.extra_peering_fraction = 0.4;  // plenty of tempting shortcuts
  const auto g = generate_graph(order, cfg);

  Xoshiro256 rng(GetParam() ^ 0xface);
  int checked = 0;
  for (int k = 0; k < 600; ++k) {
    const AsNumber s = 1 + static_cast<AsNumber>(rng.below(250));
    const AsNumber d = 1 + static_cast<AsNumber>(rng.below(250));
    if (s == d) continue;
    const auto path = g.path(s, d);
    if (path.empty()) continue;
    ++checked;
    EXPECT_TRUE(is_valley_free(g, path))
        << "path " << s << " -> " << d << " (seed " << GetParam() << ")";
  }
  EXPECT_GT(checked, 500);
}

TEST_P(ValleyFreeProperty, RouteTypeConsistentWithFirstEdge) {
  std::vector<AsNumber> order(120);
  std::iota(order.begin(), order.end(), 1);
  GraphConfig cfg;
  cfg.seed = GetParam() + 5;
  const auto g = generate_graph(order, cfg);

  for (AsNumber dst = 1; dst <= 120; dst += 17) {
    const auto table = g.routes_to(dst);
    for (AsNumber src = 1; src <= 120; ++src) {
      if (src == dst) continue;
      const auto idx = g.index_of(src);
      ASSERT_TRUE(idx.has_value());
      const AsNumber hop = table.next_hop[*idx];
      if (hop == kNoAs) continue;
      const EdgeKind kind = classify_edge(g, src, hop);
      switch (table.type[*idx]) {
        case RouteType::kCustomer:
          EXPECT_EQ(static_cast<int>(kind), static_cast<int>(EdgeKind::kDown));
          break;
        case RouteType::kPeer:
          EXPECT_EQ(static_cast<int>(kind), static_cast<int>(EdgeKind::kLateral));
          break;
        case RouteType::kProvider:
          EXPECT_EQ(static_cast<int>(kind), static_cast<int>(EdgeKind::kUp));
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValleyFreeProperty,
                         ::testing::Values(1, 2, 3, 11, 29));

}  // namespace
}  // namespace discs

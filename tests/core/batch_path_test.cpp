// The DiscsSystem batch fast path: send_batch must agree with send_packet
// verdict-for-verdict, run_attack_batched must reproduce run_attack
// exactly, and the batch path must stay safe while control-plane
// transactions land mid-stream (the suite CI runs under TSan).
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/discs_system.hpp"
#include "crypto/cmac.hpp"

namespace discs {
namespace {

DiscsSystem::Config small_config() {
  DiscsSystem::Config cfg;
  cfg.internet.num_ases = 32;
  cfg.internet.num_prefixes = 320;
  cfg.internet.seed = 99;
  cfg.seed = 5;
  return cfg;
}

struct Cast {
  AsNumber victim;
  AsNumber helper;
  AsNumber legacy;
};

Cast pick_cast(const DiscsSystem& system) {
  const auto order = system.dataset().ases_by_space_desc();
  return Cast{order[0], order[1], order[2]};
}

/// Deploys victim+helper, settles, arms DP+CDP over every victim prefix.
void arm_defense(DiscsSystem& system, const Cast& cast) {
  auto& victim = system.deploy(cast.victim);
  system.deploy(cast.helper);
  system.settle();
  victim.invoke_ddos_defense_all(/*spoofed_source=*/false);
  system.settle(10 * kSecond);  // past the tolerance interval
}

/// A deterministic traffic mix from `origin`: legitimate sources inside the
/// origin's own space, spoofed sources inside the victim's space, and a few
/// unroutable destinations.
std::vector<Ipv4Packet> craft_mix(const DiscsSystem& system, AsNumber origin,
                                  AsNumber victim) {
  const auto own = system.dataset().prefixes_of(origin);
  const auto target = system.dataset().prefixes_of(victim);
  std::vector<Ipv4Packet> packets;
  for (std::size_t k = 0; k < 64; ++k) {
    const Prefix4& src_pfx = k % 2 == 0 ? own[k % own.size()]
                                        : target[k % target.size()];
    const Ipv4Address src(src_pfx.address().bits() + 1 +
                          static_cast<std::uint32_t>(k % 7));
    const Ipv4Address dst =
        k % 9 == 8 ? Ipv4Address::from_octets(240, 0, 0, 1)  // unroutable
                   : Ipv4Address(target[k % target.size()].address().bits() + 9);
    packets.push_back(Ipv4Packet::make(src, dst, IpProto::kUdp,
                                       {static_cast<std::uint8_t>(k)}));
  }
  return packets;
}

TEST(BatchPathTest, SendBatchMatchesSendPacketPerPacket) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  arm_defense(system, cast);

  for (const AsNumber origin : {cast.helper, cast.legacy}) {
    const std::vector<Ipv4Packet> mix = craft_mix(system, origin, cast.victim);

    std::vector<DeliveryResult> serial;
    for (Ipv4Packet p : mix) {  // copy: serial mutates (stamps) in place
      serial.push_back(system.send_packet(origin, p));
    }

    PacketBatch batch;
    batch.reserve(mix.size());
    for (const Ipv4Packet& p : mix) batch.add(p);
    const std::vector<DeliveryResult> batched = system.send_batch(origin, batch);

    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(batched[i].outcome, serial[i].outcome) << "packet " << i;
      EXPECT_EQ(batched[i].source_verdict, serial[i].source_verdict)
          << "packet " << i;
      EXPECT_EQ(batched[i].destination_verdict, serial[i].destination_verdict)
          << "packet " << i;
      EXPECT_EQ(batched[i].path, serial[i].path) << "packet " << i;
    }
  }
}

// Degenerate shapes through the zero-copy scatter view: send_batch hands
// the engines index lists into one flat batch, so empty index lists (all
// packets unroutable, or every survivor intra-AS) and single-packet views
// must behave exactly like their serial counterparts.
TEST(BatchPathTest, ScatterViewEdgeCases) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  arm_defense(system, cast);

  // Empty batch: no verdicts, no engine invocation.
  PacketBatch empty;
  EXPECT_TRUE(system.send_batch(cast.helper, empty).empty());

  // Single-packet batch agrees with send_packet.
  const std::vector<Ipv4Packet> mix =
      craft_mix(system, cast.helper, cast.victim);
  for (const Ipv4Packet& p : mix) {
    Ipv4Packet serial_copy = p;
    const DeliveryResult serial =
        system.send_packet(cast.helper, serial_copy);
    PacketBatch one;
    one.add(p);
    const auto batched = system.send_batch(cast.helper, one);
    ASSERT_EQ(batched.size(), 1u);
    EXPECT_EQ(batched[0].outcome, serial.outcome);
    EXPECT_EQ(batched[0].source_verdict, serial.source_verdict);
    EXPECT_EQ(batched[0].destination_verdict, serial.destination_verdict);
  }

  // All-unroutable batch: both engine index lists are empty.
  PacketBatch unroutable;
  for (int k = 0; k < 8; ++k) {
    unroutable.add(Ipv4Packet::make(
        Ipv4Address::from_octets(240, 0, 0, static_cast<std::uint8_t>(k + 1)),
        Ipv4Address::from_octets(240, 1, 0, 1), IpProto::kUdp, {}));
  }
  for (const DeliveryResult& r : system.send_batch(cast.helper, unroutable)) {
    EXPECT_EQ(r.outcome, DeliveryOutcome::kUnroutable);
    EXPECT_TRUE(r.path.empty());
  }

  // Intra-AS batch: routable but never crosses a border — the outbound
  // index list must exclude every packet and both stages stay idle.
  const auto own = system.dataset().prefixes_of(cast.helper);
  PacketBatch intra;
  for (std::size_t k = 0; k + 1 < std::min<std::size_t>(own.size(), 4); ++k) {
    intra.add(Ipv4Packet::make(Ipv4Address(own[k].address().bits() + 1),
                               Ipv4Address(own[k + 1].address().bits() + 2),
                               IpProto::kUdp, {}));
  }
  for (const DeliveryResult& r : system.send_batch(cast.helper, intra)) {
    EXPECT_EQ(r.outcome, DeliveryOutcome::kDelivered);
    EXPECT_EQ(r.source_verdict, Verdict::kPass);  // default: stage skipped
  }
}

TEST(BatchPathTest, RunAttackBatchedReproducesRunAttack) {
  // Two identically-seeded systems evolve their samplers identically, so
  // the serial and batched attack runs see the exact same packet stream.
  DiscsSystem serial_system(small_config());
  DiscsSystem batched_system(small_config());
  const Cast cast = pick_cast(serial_system);
  arm_defense(serial_system, cast);
  arm_defense(batched_system, cast);

  const AttackReport serial = serial_system.run_attack(
      AttackType::kDirect, cast.helper, cast.victim, 300);
  const AttackReport batched = batched_system.run_attack_batched(
      AttackType::kDirect, cast.helper, cast.victim, 300, /*batch_size=*/64);

  EXPECT_EQ(batched.packets_sent, serial.packets_sent);
  EXPECT_EQ(batched.dropped_at_source, serial.dropped_at_source);
  EXPECT_EQ(batched.dropped_at_destination, serial.dropped_at_destination);
  EXPECT_EQ(batched.delivered, serial.delivered);
  EXPECT_EQ(batched.packets_sent, 300u);
  // The defense actually fires on this topology (not a vacuous comparison).
  EXPECT_GT(serial.dropped_at_source + serial.dropped_at_destination, 0u);
}

TEST(BatchPathTest, BatchSurvivesMidStreamControlPlaneChanges) {
  // TSan target: a sender thread drives send_batch with an explicit
  // timestamp (never touching the EventLoop) while the main thread lands
  // invocations, re-keys, and a teardown through the con-rou pipeline. The
  // engines' writer locks are the only thing between them — this test is
  // the proof they suffice.
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto& victim = system.deploy(cast.victim);
  auto& helper = system.deploy(cast.helper);
  system.settle();

  const std::vector<Ipv4Packet> mix =
      craft_mix(system, cast.helper, cast.victim);
  const SimTime now = system.now();
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> batches_sent{0};

  std::thread sender([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      PacketBatch batch;
      batch.reserve(mix.size());
      for (const Ipv4Packet& p : mix) batch.add(p);
      const auto results = system.send_batch(cast.helper, batch, now);
      ASSERT_EQ(results.size(), mix.size());
      batches_sent.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Don't start the churn until the sender is demonstrably mid-stream (on a
  // single-core host the spawning thread can otherwise finish first).
  while (batches_sent.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }

  // Mid-stream control-plane churn. con_rou latency is 0, so every submit
  // applies synchronously on this thread, under the engine writer lock,
  // while the sender is inside process_outbound/process_inbound.
  for (int round = 0; round < 40; ++round) {
    victim.invoke_ddos_defense_all(/*spoofed_source=*/round % 2 == 1);
    TableTransaction rekey;
    rekey.set_verify_key(cast.helper, derive_key128(1000 + round),
                         /*retain_previous=*/true);
    victim.con_rou().submit(std::move(rekey));
    TableTransaction finish;
    finish.finish_rekey(cast.helper);
    victim.con_rou().submit(std::move(finish));
    helper.con_rou().submit(TableTransaction{});  // empty txn: epoch-only bump
  }
  helper.tear_down_peering(cast.victim, "mid-stream teardown");

  // A few more batches must flow against the post-teardown tables before
  // the stream winds down.
  const std::size_t churned = batches_sent.load(std::memory_order_relaxed);
  while (batches_sent.load(std::memory_order_relaxed) < churned + 2) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  sender.join();
  EXPECT_GT(batches_sent.load(), 0u);

  // Only after the sender is gone may the loop run again (undeploy drains
  // teardown messages through it).
  system.undeploy(cast.helper);
  EXPECT_FALSE(system.is_das(cast.helper));
  EXPECT_EQ(victim.tables().applied_epoch(),
            victim.con_rou().stats().last_epoch);
}

TEST(BatchPathTest, UndeployLeavesNoOrphanedStateBehind) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  arm_defense(system, cast);
  auto& victim = *system.controller(cast.victim);
  ASSERT_TRUE(victim.tables().key_s.has_key(cast.helper));

  system.undeploy(cast.helper);

  // The teardown propagated: the victim holds no key material for the
  // departed AS and its tables are exactly what the channel delivered.
  EXPECT_EQ(system.controller(cast.helper), nullptr);
  EXPECT_FALSE(victim.tables().key_s.has_key(cast.helper));
  EXPECT_FALSE(victim.tables().key_v.has_key(cast.helper));
  EXPECT_FALSE(victim.is_peer(cast.helper));
  EXPECT_EQ(victim.tables().applied_epoch(),
            victim.con_rou().stats().last_epoch);

  // The batch path keeps working; the departed AS is a legacy AS now.
  PacketBatch batch;
  for (const Ipv4Packet& p : craft_mix(system, cast.helper, cast.victim)) {
    batch.add(p);
  }
  const auto results = system.send_batch(cast.helper, batch);
  EXPECT_EQ(results.size(), batch.size());
}

}  // namespace
}  // namespace discs

// Moderate-scale integration: a 20-DAS collaboration over a 256-AS internet
// — full-mesh peering and keys, an invocation storm, mixed attack/genuine
// traffic, and teardown — asserting global invariants rather than
// per-packet outcomes.
#include <gtest/gtest.h>

#include "core/discs_system.hpp"

namespace discs {
namespace {

TEST(ScaleTest, TwentyDasCollaboration) {
  DiscsSystem::Config cfg;
  cfg.internet.num_ases = 256;
  cfg.internet.num_prefixes = 2560;
  cfg.internet.seed = 4242;
  cfg.seed = 9;
  DiscsSystem system(cfg);

  const auto order = system.dataset().ases_by_space_desc();
  constexpr std::size_t kDases = 20;
  for (std::size_t i = 0; i < kDases; ++i) system.deploy(order[i]);
  system.settle();

  // Full mesh: every DAS peers with the other 19 and holds both-direction
  // keys for each.
  for (std::size_t i = 0; i < kDases; ++i) {
    auto* c = system.controller(order[i]);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->peer_count(), kDases - 1) << "AS " << order[i];
    for (std::size_t j = 0; j < kDases; ++j) {
      if (i == j) continue;
      EXPECT_TRUE(c->tables().key_s.has_key(order[j]));
      EXPECT_TRUE(c->tables().key_v.has_key(order[j]));
    }
  }

  // Every DAS invokes defense simultaneously (an invocation storm).
  for (std::size_t i = 0; i < kDases; ++i) {
    system.controller(order[i])->invoke_ddos_defense_all(false);
  }
  system.settle(10 * kSecond);

  // Attack matrix: agents inside DAS j attacking DAS i are always filtered
  // at the source (sampled pairs).
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 4; j < 8; ++j) {
      const auto report =
          system.run_attack(AttackType::kDirect, order[j], order[i], 25);
      EXPECT_EQ(report.delivered, 0u) << order[j] << " -> " << order[i];
    }
  }

  // Genuine traffic between every sampled DAS pair still flows.
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t j = (i + 3) % kDases;
    if (i == j) continue;
    auto p = system.sampler().legit_packet(order[i], order[j]);
    EXPECT_EQ(system.send_packet(order[i], p).outcome,
              DeliveryOutcome::kDelivered)
        << order[i] << " -> " << order[j];
  }

  // Attack traffic from a legacy AS is partially filtered: globally some
  // destination drops must have happened (spoofing DAS space).
  AttackReport legacy_total;
  for (int k = 0; k < 8; ++k) {
    const auto r = system.run_attack(AttackType::kDirect, order[kDases + static_cast<std::size_t>(k)],
                                     order[0], 50);
    legacy_total.packets_sent += r.packets_sent;
    legacy_total.delivered += r.delivered;
    legacy_total.dropped_at_destination += r.dropped_at_destination;
  }
  EXPECT_GT(legacy_total.dropped_at_destination, 0u);
  EXPECT_GT(legacy_total.delivered, 0u);  // partial deployment

  // Teardown half the club; the rest keeps functioning.
  for (std::size_t i = kDases / 2; i < kDases; ++i) system.undeploy(order[i]);
  for (std::size_t i = 0; i < kDases / 2; ++i) {
    EXPECT_EQ(system.controller(order[i])->peer_count(), kDases / 2 - 1);
  }
  const auto after =
      system.run_attack(AttackType::kDirect, order[1], order[0], 25);
  EXPECT_EQ(after.delivered, 0u);  // both still deployed and invoked
}

TEST(ScaleTest, ControlPlaneMessageVolumeIsQuadraticNotWorse) {
  DiscsSystem::Config cfg;
  cfg.internet.num_ases = 128;
  cfg.internet.num_prefixes = 1280;
  cfg.internet.seed = 7;
  cfg.seed = 3;
  DiscsSystem system(cfg);
  const auto order = system.dataset().ases_by_space_desc();

  for (std::size_t i = 0; i < 12; ++i) system.deploy(order[i]);
  system.settle();
  const auto stats = system.channel().stats();
  // Peering full mesh of n=12: request/accept/key/ack per direction pair,
  // plus one link-level DeliveryAck per reliable message — bounded by a
  // small constant times n^2.
  const std::size_t pairs = 12 * 11 / 2;
  EXPECT_LE(stats.messages, pairs * 16);
  EXPECT_GE(stats.messages, pairs * 3);
}

}  // namespace
}  // namespace discs

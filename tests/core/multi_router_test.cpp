// Multi-router DAS tests: one controller pushing tables to several border
// routers (the route-reflector structure of the paper's Figure 2), with the
// traversed router selected per neighbor.
#include <gtest/gtest.h>

#include "core/discs_system.hpp"

namespace discs {
namespace {

DiscsSystem::Config multi_router_config() {
  DiscsSystem::Config cfg;
  cfg.internet.num_ases = 32;
  cfg.internet.num_prefixes = 320;
  cfg.internet.seed = 99;
  cfg.seed = 5;
  cfg.controller.border_routers = 4;
  return cfg;
}

TEST(MultiRouterTest, ControllerSpawnsConfiguredRouterCount) {
  DiscsSystem system(multi_router_config());
  const auto order = system.dataset().ases_by_space_desc();
  auto& c = system.deploy(order[0]);
  EXPECT_EQ(c.router_count(), 4u);
  // router(i) wraps modulo the count.
  EXPECT_EQ(&c.router(0), &c.router(4));
  EXPECT_NE(&c.router(0), &c.router(1));
}

TEST(MultiRouterTest, AllRoutersShareTheControllerTables) {
  DiscsSystem system(multi_router_config());
  const auto order = system.dataset().ases_by_space_desc();
  auto& victim = system.deploy(order[0]);
  auto& helper = system.deploy(order[1]);
  system.settle();
  victim.invoke_ddos_defense_all(false);
  system.settle(10 * kSecond);

  // Every one of the helper's routers enforces DP: spoofed packets die no
  // matter which border they exit through.
  const SimTime now = system.now() + kMinute;
  for (std::size_t i = 0; i < helper.router_count(); ++i) {
    SpoofFlow flow{order[1], order[2], order[0], AttackType::kDirect};
    auto packet = system.sampler().attack_packet(flow);
    EXPECT_EQ(helper.router(i).process_outbound(packet, now),
              Verdict::kDropFiltered)
        << "router " << i;
  }
}

TEST(MultiRouterTest, EndToEndFilteringAcrossRouters) {
  DiscsSystem system(multi_router_config());
  const auto order = system.dataset().ases_by_space_desc();
  auto& victim = system.deploy(order[0]);
  auto& helper = system.deploy(order[1]);
  system.settle();
  victim.invoke_ddos_defense_all(false);
  system.settle(10 * kSecond);

  const auto report =
      system.run_attack(AttackType::kDirect, order[1], order[0], 200);
  EXPECT_EQ(report.delivered, 0u);
  EXPECT_EQ(report.dropped_at_source, 200u);

  // Genuine traffic still flows through whichever routers it hits.
  for (int k = 0; k < 40; ++k) {
    auto p = system.sampler().legit_packet(order[1], order[0]);
    EXPECT_EQ(system.send_packet(order[1], p).outcome,
              DeliveryOutcome::kDelivered);
  }
  // Aggregated stats across the helper's routers account for the drops.
  EXPECT_EQ(helper.total_router_stats().out_dropped, 200u);
  EXPECT_GE(helper.total_router_stats().out_stamped, 40u);
}

TEST(MultiRouterTest, AlarmModeAppliesToEveryRouter) {
  DiscsSystem system(multi_router_config());
  const auto order = system.dataset().ases_by_space_desc();
  auto& victim = system.deploy(order[0]);
  system.deploy(order[1]);
  system.settle();
  victim.invoke({{victim.local_prefixes().front(),
                  invoke_mask(InvokableFunction::kDp) |
                      invoke_mask(InvokableFunction::kCdp),
                  kHour}},
                /*alarm_mode=*/true);
  system.settle(5 * kSecond);
  for (std::size_t i = 0; i < victim.router_count(); ++i) {
    EXPECT_TRUE(victim.router(i).alarm_mode()) << i;
  }
  victim.request_drop_mode();
  for (std::size_t i = 0; i < victim.router_count(); ++i) {
    EXPECT_FALSE(victim.router(i).alarm_mode()) << i;
  }
}

}  // namespace
}  // namespace discs

// Full-system integration tests: BGP discovery -> peering -> keys ->
// on-demand invocation -> packet-level filtering, through the public facade.
#include "core/discs_system.hpp"

#include <gtest/gtest.h>

namespace discs {
namespace {

DiscsSystem::Config small_config() {
  DiscsSystem::Config cfg;
  cfg.internet.num_ases = 32;
  cfg.internet.num_prefixes = 320;
  cfg.internet.seed = 99;
  cfg.seed = 5;
  return cfg;
}

/// Two distinct DAS candidates plus a legacy AS, all guaranteed routable.
struct Cast {
  AsNumber victim;
  AsNumber helper;
  AsNumber legacy;
};

Cast pick_cast(const DiscsSystem& system) {
  const auto order = system.dataset().ases_by_space_desc();
  return Cast{order[0], order[1], order[2]};
}

TEST(DiscsSystemTest, DeployDiscoverPeer) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto& victim = system.deploy(cast.victim);
  auto& helper = system.deploy(cast.helper);
  system.settle();

  EXPECT_TRUE(victim.is_peer(cast.helper));
  EXPECT_TRUE(helper.is_peer(cast.victim));
  EXPECT_TRUE(victim.tables().key_s.has_key(cast.helper));
  EXPECT_TRUE(helper.tables().key_v.has_key(cast.victim));
}

TEST(DiscsSystemTest, LateDeployerDiscoversEarlierOnes) {
  DiscsSystem system(small_config());
  const auto order = system.dataset().ases_by_space_desc();
  system.deploy(order[0]);
  system.deploy(order[1]);
  system.settle();
  // A third AS joins much later; the earlier Ads still sit in its Loc-RIB.
  auto& late = system.deploy(order[5]);
  system.settle();
  EXPECT_EQ(late.peer_count(), 2u);
}

TEST(DiscsSystemTest, DeployIsIdempotentAndValidates) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto& first = system.deploy(cast.victim);
  auto& second = system.deploy(cast.victim);
  EXPECT_EQ(&first, &second);
  EXPECT_THROW(system.deploy(999999), std::invalid_argument);
}

TEST(DiscsSystemTest, DirectSpoofingAttackIsFiltered) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto& victim = system.deploy(cast.victim);
  system.deploy(cast.helper);
  system.settle();

  victim.invoke_ddos_defense_all(/*spoofed_source=*/false);
  system.settle(10 * kSecond);  // past the tolerance interval

  // Agents inside the helper DAS: every spoofed packet dies at its egress.
  const auto from_helper =
      system.run_attack(AttackType::kDirect, cast.helper, cast.victim, 100);
  EXPECT_EQ(from_helper.delivered, 0u);
  EXPECT_EQ(from_helper.dropped_at_source, 100u);

  // Agents inside a legacy AS: packets spoofing the helper's space die at
  // the victim's ingress (no valid mark); others sail through.
  const auto from_legacy =
      system.run_attack(AttackType::kDirect, cast.legacy, cast.victim, 200);
  EXPECT_GT(from_legacy.dropped_at_destination, 0u);
  EXPECT_GT(from_legacy.delivered, 0u);  // partial deployment, as expected
  EXPECT_EQ(from_legacy.dropped_at_source, 0u);
}

TEST(DiscsSystemTest, GenuineTrafficUnaffectedDuringDefense) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto& victim = system.deploy(cast.victim);
  system.deploy(cast.helper);
  system.settle();
  victim.invoke_ddos_defense_all(false);
  system.settle(10 * kSecond);

  // Genuine packets from the helper (stamped+verified) and from the legacy
  // AS (passed unverified) must all arrive: DISCS is IFP-free.
  for (int k = 0; k < 50; ++k) {
    auto from_helper = system.sampler().legit_packet(cast.helper, cast.victim);
    EXPECT_EQ(system.send_packet(cast.helper, from_helper).outcome,
              DeliveryOutcome::kDelivered);
    auto from_legacy = system.sampler().legit_packet(cast.legacy, cast.victim);
    EXPECT_EQ(system.send_packet(cast.legacy, from_legacy).outcome,
              DeliveryOutcome::kDelivered);
  }
}

TEST(DiscsSystemTest, ReflectionAttackIsFiltered) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto& victim = system.deploy(cast.victim);
  system.deploy(cast.helper);
  system.settle();
  victim.invoke_ddos_defense_all(/*spoofed_source=*/true);
  system.settle(10 * kSecond);

  // Reflection requests forged inside the helper AS die at its egress (SP).
  const auto report =
      system.run_attack(AttackType::kReflection, cast.helper, cast.victim, 100);
  EXPECT_EQ(report.delivered, 0u);
  EXPECT_EQ(report.dropped_at_source, 100u);

  // The victim's own genuine traffic to the helper still flows (CSP stamp
  // and verify).
  auto genuine = system.sampler().legit_packet(cast.victim, cast.helper);
  EXPECT_EQ(system.send_packet(cast.victim, genuine).outcome,
            DeliveryOutcome::kDelivered);
  EXPECT_GE(system.controller(cast.helper)->router().stats().in_verified, 1u);
}

TEST(DiscsSystemTest, NoProtectionWithoutInvocation) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  system.deploy(cast.victim);
  system.deploy(cast.helper);
  system.settle();
  // Peered but nothing invoked: on-demand means zero processing.
  const auto report =
      system.run_attack(AttackType::kDirect, cast.helper, cast.victim, 50);
  EXPECT_EQ(report.delivered, 50u);
}

TEST(DiscsSystemTest, ProtectionExpiresWithDuration) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto& victim = system.deploy(cast.victim);
  system.deploy(cast.helper);
  system.settle();
  victim.invoke_ddos_defense_all(false, /*duration=*/kMinute);
  system.settle(10 * kSecond);
  const auto during =
      system.run_attack(AttackType::kDirect, cast.helper, cast.victim, 20);
  EXPECT_EQ(during.delivered, 0u);

  system.settle(2 * kMinute);  // past expiry
  const auto after =
      system.run_attack(AttackType::kDirect, cast.helper, cast.victim, 20);
  EXPECT_EQ(after.delivered, 20u);
}

TEST(DiscsSystemTest, UnroutableDestinationsReported) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto packet = Ipv4Packet::make(*Ipv4Address::parse("203.0.113.1"),
                                 *Ipv4Address::parse("198.51.100.1"),
                                 IpProto::kUdp, {});
  EXPECT_EQ(system.send_packet(cast.victim, packet).outcome,
            DeliveryOutcome::kUnroutable);
}

TEST(DiscsSystemTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    DiscsSystem system(small_config());
    const Cast cast = pick_cast(system);
    auto& victim = system.deploy(cast.victim);
    system.deploy(cast.helper);
    system.settle();
    victim.invoke_ddos_defense_all(false);
    system.settle(10 * kSecond);
    return system.run_attack(AttackType::kDirect, cast.legacy, cast.victim, 100);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped_at_destination, b.dropped_at_destination);
}

TEST(DiscsSystemTest, ManyDasFullMesh) {
  DiscsSystem system(small_config());
  const auto order = system.dataset().ases_by_space_desc();
  for (std::size_t i = 0; i < 6; ++i) system.deploy(order[i]);
  system.settle();
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(system.controller(order[i])->peer_count(), 5u) << order[i];
  }
  EXPECT_EQ(system.deployed_ases().size(), 6u);
}

}  // namespace
}  // namespace discs

// IPv6 end-to-end system tests: the §V-F data plane driven by real control
// plane invocations over the dual-stack dataset.
#include <gtest/gtest.h>

#include "core/discs_system.hpp"

namespace discs {
namespace {

DiscsSystem::Config small_config() {
  DiscsSystem::Config cfg;
  cfg.internet.num_ases = 32;
  cfg.internet.num_prefixes = 320;
  cfg.internet.seed = 77;
  cfg.seed = 6;
  return cfg;
}

struct Cast {
  AsNumber victim;
  AsNumber helper;
  AsNumber legacy;
};

Cast pick_cast(const DiscsSystem& system) {
  const auto order = system.dataset().ases_by_space_desc();
  return Cast{order[0], order[1], order[2]};
}

TEST(Ipv6SystemTest, InvocationCoversBothFamilies) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto& victim = system.deploy(cast.victim);
  auto& helper = system.deploy(cast.helper);
  system.settle();

  EXPECT_FALSE(victim.local_prefixes6().empty());
  victim.invoke_ddos_defense_all(false);
  system.settle(10 * kSecond);

  const SimTime now = system.now() + kMinute;
  const auto v6_prefix = victim.local_prefixes6().front();
  const auto probe = system.sampler().sample_address6(cast.victim);
  ASSERT_TRUE(v6_prefix.contains(probe));
  const auto match = helper.tables().out_dst.lookup(probe, now);
  EXPECT_TRUE(has_function(match.functions, DefenseFunction::kDp));
  EXPECT_TRUE(has_function(match.functions, DefenseFunction::kCdpStamp));
}

TEST(Ipv6SystemTest, DirectV6AttackFiltered) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto& victim = system.deploy(cast.victim);
  system.deploy(cast.helper);
  system.settle();
  victim.invoke_ddos_defense_all(false);
  system.settle(10 * kSecond);

  // Agents inside the helper spoofing a legacy AS's v6 space: DP at the
  // helper's egress.
  std::size_t egress_drops = 0, victim_drops = 0, delivered = 0;
  for (int k = 0; k < 100; ++k) {
    SpoofFlow flow{cast.helper, cast.legacy, cast.victim, AttackType::kDirect};
    auto packet = system.sampler().attack_packet6(flow);
    const auto result = system.send_packet(cast.helper, packet);
    egress_drops += result.outcome == DeliveryOutcome::kDroppedAtSource;
  }
  EXPECT_EQ(egress_drops, 100u);

  // Attack from the legacy AS spoofing the helper's v6 space: no valid
  // destination option -> CDP-verify drops at the victim.
  for (int k = 0; k < 100; ++k) {
    SpoofFlow flow{cast.legacy, cast.helper, cast.victim, AttackType::kDirect};
    auto packet = system.sampler().attack_packet6(flow);
    const auto result = system.send_packet(cast.legacy, packet);
    victim_drops += result.outcome == DeliveryOutcome::kDroppedAtDestination;
    delivered += result.outcome == DeliveryOutcome::kDelivered;
  }
  EXPECT_EQ(victim_drops, 100u);
  EXPECT_EQ(delivered, 0u);
}

TEST(Ipv6SystemTest, GenuineV6TrafficStampedAndVerified) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto& victim = system.deploy(cast.victim);
  auto& helper = system.deploy(cast.helper);
  system.settle();
  victim.invoke_ddos_defense_all(false);
  system.settle(10 * kSecond);

  for (int k = 0; k < 50; ++k) {
    auto packet = system.sampler().legit_packet6(cast.helper, cast.victim);
    const auto original = packet;
    EXPECT_EQ(system.send_packet(cast.helper, packet).outcome,
              DeliveryOutcome::kDelivered);
    // Mark added at the helper's egress and removed at the victim's
    // ingress: the delivered packet equals the original.
    EXPECT_EQ(packet, original);
  }
  EXPECT_GE(helper.router().stats().out_stamped, 50u);
  EXPECT_GE(victim.router().stats().in_verified, 50u);

  // Legacy-origin genuine v6 traffic passes unverified (no peer source).
  auto from_legacy = system.sampler().legit_packet6(cast.legacy, cast.victim);
  EXPECT_EQ(system.send_packet(cast.legacy, from_legacy).outcome,
            DeliveryOutcome::kDelivered);
}

TEST(Ipv6SystemTest, ReflectionV6Defense) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto& victim = system.deploy(cast.victim);
  system.deploy(cast.helper);
  system.settle();
  victim.invoke_ddos_defense_all(/*spoofed_source=*/true);
  system.settle(10 * kSecond);

  // Forged v6 requests claiming the victim, sent from the legacy AS toward
  // the helper (reflector): CSP-verify drops them at the helper's ingress.
  std::size_t dropped = 0;
  for (int k = 0; k < 100; ++k) {
    SpoofFlow flow{cast.legacy, cast.helper, cast.victim,
                   AttackType::kReflection};
    auto packet = system.sampler().attack_packet6(flow);
    dropped += system.send_packet(cast.legacy, packet).outcome ==
               DeliveryOutcome::kDroppedAtDestination;
  }
  EXPECT_EQ(dropped, 100u);

  // The victim's genuine v6 traffic to the helper is stamped and survives.
  auto genuine = system.sampler().legit_packet6(cast.victim, cast.helper);
  EXPECT_EQ(system.send_packet(cast.victim, genuine).outcome,
            DeliveryOutcome::kDelivered);
}

TEST(Ipv6SystemTest, UnroutableV6Destination) {
  DiscsSystem system(small_config());
  const Cast cast = pick_cast(system);
  auto packet = Ipv6Packet::make(*Ipv6Address::parse("fd00::1"),
                                 *Ipv6Address::parse("fd00::2"), 17, {});
  EXPECT_EQ(system.send_packet(cast.victim, packet).outcome,
            DeliveryOutcome::kUnroutable);
}

}  // namespace
}  // namespace discs

// Teardown tests: severing one peering and leaving the collaboration
// entirely (paper §IV-C peering policy is dynamic; incremental deployment
// also means incremental *un*-deployment must not strand state).
#include <gtest/gtest.h>

#include "core/discs_system.hpp"

namespace discs {
namespace {

DiscsSystem::Config small_config() {
  DiscsSystem::Config cfg;
  cfg.internet.num_ases = 32;
  cfg.internet.num_prefixes = 320;
  cfg.internet.seed = 99;
  cfg.seed = 5;
  return cfg;
}

TEST(TeardownTest, TearDownOnePeeringDropsKeysBothSides) {
  DiscsSystem system(small_config());
  const auto order = system.dataset().ases_by_space_desc();
  auto& a = system.deploy(order[0]);
  auto& b = system.deploy(order[1]);
  auto& c = system.deploy(order[2]);
  system.settle();
  ASSERT_EQ(a.peer_count(), 2u);

  a.tear_down_peering(order[1]);
  system.settle(5 * kSecond);

  EXPECT_FALSE(a.is_peer(order[1]));
  EXPECT_FALSE(b.is_peer(order[0]));
  EXPECT_FALSE(a.tables().key_s.has_key(order[1]));
  EXPECT_FALSE(b.tables().key_v.has_key(order[0]));
  // The third relationship is untouched.
  EXPECT_TRUE(a.is_peer(order[2]));
  EXPECT_TRUE(c.is_peer(order[0]));
}

TEST(TeardownTest, UndeployRevertsToLegacyAs) {
  DiscsSystem system(small_config());
  const auto order = system.dataset().ases_by_space_desc();
  auto& victim = system.deploy(order[0]);
  system.deploy(order[1]);
  system.settle();
  victim.invoke_ddos_defense_all(false);
  system.settle(10 * kSecond);

  // Protection active.
  auto during = system.run_attack(AttackType::kDirect, order[1], order[0], 50);
  EXPECT_EQ(during.delivered, 0u);

  // The helper un-deploys: its egress filters disappear with it.
  system.undeploy(order[1]);
  EXPECT_FALSE(system.is_das(order[1]));
  EXPECT_FALSE(victim.is_peer(order[1]));
  EXPECT_FALSE(victim.tables().key_v.has_key(order[1]));

  auto after = system.run_attack(AttackType::kDirect, order[1], order[0], 50);
  EXPECT_EQ(after.dropped_at_source, 0u);
  // Victim-side CDP can no longer judge traffic claiming the ex-peer
  // either (no key), so these spoofs get through — exactly the incentive
  // structure the paper describes.
  EXPECT_GT(after.delivered, 0u);
}

TEST(TeardownTest, UndeployIsIdempotentAndRedeployable) {
  DiscsSystem system(small_config());
  const auto order = system.dataset().ases_by_space_desc();
  system.deploy(order[0]);
  system.deploy(order[1]);
  system.settle();

  system.undeploy(order[1]);
  system.undeploy(order[1]);  // no-op
  EXPECT_FALSE(system.is_das(order[1]));

  // Re-deploy: discovery runs again, peering re-forms.
  auto& back = system.deploy(order[1]);
  system.settle();
  EXPECT_TRUE(back.is_peer(order[0]));
  EXPECT_TRUE(system.controller(order[0])->is_peer(order[1]));
}

TEST(TeardownTest, RemainingDasesKeepWorkingAfterUndeploy) {
  DiscsSystem system(small_config());
  const auto order = system.dataset().ases_by_space_desc();
  auto& victim = system.deploy(order[0]);
  system.deploy(order[1]);
  system.deploy(order[2]);
  system.settle();
  system.undeploy(order[1]);

  victim.invoke_ddos_defense_all(false);
  system.settle(10 * kSecond);
  const auto report =
      system.run_attack(AttackType::kDirect, order[2], order[0], 50);
  EXPECT_EQ(report.delivered, 0u);  // AS order[2] still cooperates
}

}  // namespace
}  // namespace discs

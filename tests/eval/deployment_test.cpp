#include "eval/deployment.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

#include "topology/synthetic.hpp"

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }

InternetDataset four_as_internet() {
  // r = {1: 0.5, 2: 0.25, 3: 0.125, 4: 0.125}.
  return InternetDataset({
      {pfx("8.0.0.0/7"), {1}},
      {pfx("10.0.0.0/8"), {2}},
      {pfx("12.0.0.0/9"), {3}},
      {pfx("12.128.0.0/9"), {4}},
  });
}

TEST(DeploymentStateTest, SumsTrackDeployments) {
  auto state = DeploymentState::from_dataset(four_as_internet());
  EXPECT_EQ(state.size(), 4u);
  state.deploy(0);  // AS 1, r = 0.5
  EXPECT_DOUBLE_EQ(state.s1(), 0.5);
  EXPECT_DOUBLE_EQ(state.s2(), 0.25);
  state.deploy(1);  // AS 2, r = 0.25
  EXPECT_DOUBLE_EQ(state.s1(), 0.75);
  EXPECT_DOUBLE_EQ(state.s2(), 0.3125);
  state.deploy(1);  // idempotent
  EXPECT_EQ(state.deployed_count(), 2u);
  state.reset();
  EXPECT_DOUBLE_EQ(state.s1(), 0.0);
  EXPECT_EQ(state.deployed_count(), 0u);
}

TEST(DeploymentStateTest, IncentiveFormulasMatchHandComputation) {
  auto state = DeploymentState::from_dataset(four_as_internet());
  state.deploy(0);  // D = {AS1}, r1 = 0.5
  // inc_DP = S1 - S2 = 0.5 - 0.25 = 0.25, independent of v.
  EXPECT_DOUBLE_EQ(state.avg_incentive_dp(), 0.25);
  // CDP: inc(v) = S1 - S2 - S1 r_v; averaging over v in {2,3,4} weighted by
  // r_v: mean r_v = C2/C1 = (0.0625+0.015625*2)/0.5 = 0.1875.
  EXPECT_DOUBLE_EQ(state.avg_incentive_cdp(), 0.25 - 0.5 * 0.1875);
  // DP+CDP = (S1-S2) + S1(1 - mean_rv - S1).
  EXPECT_DOUBLE_EQ(state.avg_incentive_dp_cdp(),
                   0.25 + 0.5 * (1 - 0.1875 - 0.5));
}

TEST(DeploymentStateTest, FixedVictimIncentivesAreMonotonicallyIncreasing) {
  // The paper proves: for any fixed LAS v, inc(D, v) <= inc(D', v) when
  // D is a subset of D'. Verify the pointwise formulas along a random order
  // on a synthetic internet, for the last AS in the order as v (it never
  // deploys during the checked steps).
  SyntheticConfig cfg;
  cfg.num_ases = 300;
  cfg.num_prefixes = 3000;
  const auto ds = generate_dataset(cfg);
  auto state = DeploymentState::from_dataset(ds);
  const auto order = deployment_order(ds, DeploymentStrategy::kRandom, 5);
  const double r_v = state.ratio(order.back());

  auto inc_dp = [&] { return state.s1() - state.s2(); };
  auto inc_cdp = [&] { return state.s1() - state.s2() - state.s1() * r_v; };
  auto inc_both = [&] {
    return (state.s1() - state.s2()) +
           state.s1() * (1.0 - r_v - state.s1());
  };
  double last_dp = -1, last_cdp = -1, last_both = -1;
  for (std::size_t step = 0; step + 1 < order.size(); ++step) {
    state.deploy(order[step]);
    EXPECT_GE(inc_dp(), last_dp - 1e-12);
    EXPECT_GE(inc_cdp(), last_cdp - 1e-12);
    EXPECT_GE(inc_both(), last_both - 1e-12);
    last_dp = inc_dp();
    last_cdp = inc_cdp();
    last_both = inc_both();
  }
}

TEST(DeploymentStateTest, CombinedIncentiveDominatesComponents) {
  SyntheticConfig cfg;
  cfg.num_ases = 200;
  cfg.num_prefixes = 2000;
  const auto ds = generate_dataset(cfg);
  auto state = DeploymentState::from_dataset(ds);
  const auto order = deployment_order(ds, DeploymentStrategy::kOptimal, 0);
  for (std::size_t step = 0; step < 100; ++step) {
    state.deploy(order[step]);
    EXPECT_GE(state.avg_incentive_dp_cdp(), state.avg_incentive_dp() - 1e-12);
    EXPECT_GE(state.avg_incentive_dp_cdp(), state.avg_incentive_cdp() - 1e-12);
  }
}

TEST(DeploymentStateTest, EffectivenessBoundsAndSaturation) {
  auto state = DeploymentState::from_dataset(four_as_internet());
  EXPECT_DOUBLE_EQ(state.effectiveness(), 0.0);
  for (std::size_t i = 0; i < 4; ++i) state.deploy(i);
  // Full deployment: every flow with distinct (a, i, v) is filtered. The
  // value equals 1 - P(role collisions), strictly < 1 with finite ASes and
  // noticeably so in this tiny 4-AS example (collisions are likely).
  EXPECT_GT(state.effectiveness(), 0.4);
  EXPECT_LT(state.effectiveness(), 1.0);
}

TEST(DeploymentStateTest, FullDeploymentMatchesCollisionFreeProbability) {
  // For full D the filter misses only flows with a == v, a == i, or the
  // CDP i == v exclusion; eff = P(all distinct) computed directly.
  const auto ds = four_as_internet();
  auto state = DeploymentState::from_dataset(ds);
  std::vector<double> r;
  for (AsNumber as : ds.as_numbers()) r.push_back(ds.ratio(as));
  for (std::size_t i = 0; i < 4; ++i) state.deploy(i);

  double expected = 0;
  for (std::size_t a = 0; a < 4; ++a)
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t v = 0; v < 4; ++v) {
        if (v == a) continue;
        const bool end_leg = i != a;          // a deployed
        const bool crypto_leg = a != i && i != v;  // i deployed
        if (end_leg || crypto_leg) expected += r[a] * r[i] * r[v];
      }
  EXPECT_NEAR(state.effectiveness(), expected, 1e-12);
}

TEST(DeploymentOrderTest, OptimalOrdersBySpace) {
  const auto ds = four_as_internet();
  const auto order = deployment_order(ds, DeploymentStrategy::kOptimal, 0);
  EXPECT_DOUBLE_EQ(ds.ratio(ds.as_numbers()[order[0]]), 0.5);
  EXPECT_DOUBLE_EQ(ds.ratio(ds.as_numbers()[order[1]]), 0.25);
}

TEST(DeploymentOrderTest, RandomIsSeededPermutation) {
  const auto ds = four_as_internet();
  const auto a = deployment_order(ds, DeploymentStrategy::kRandom, 1);
  const auto b = deployment_order(ds, DeploymentStrategy::kRandom, 1);
  const auto c = deployment_order(ds, DeploymentStrategy::kRandom, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  auto sorted = a;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::size_t> expect(4);
  std::iota(expect.begin(), expect.end(), std::size_t{0});
  EXPECT_EQ(sorted, expect);
}

TEST(RunDeploymentTest, CurveSamplesRequestedCounts) {
  const auto ds = four_as_internet();
  const auto order = deployment_order(ds, DeploymentStrategy::kOptimal, 0);
  const auto curve = run_deployment(ds, order, {0, 1, 2, 4},
                                    CurveMetric::kCumulatedRatio);
  ASSERT_EQ(curve.values.size(), 4u);
  EXPECT_DOUBLE_EQ(curve.values[0], 0.0);
  EXPECT_DOUBLE_EQ(curve.values[1], 0.5);
  EXPECT_DOUBLE_EQ(curve.values[2], 0.75);
  EXPECT_NEAR(curve.values[3], 1.0, 1e-12);
}

TEST(RunDeploymentTest, OptimalDominatesRandomDominatesUniform) {
  SyntheticConfig cfg;
  cfg.num_ases = 500;
  cfg.num_prefixes = 5000;
  const auto ds = generate_dataset(cfg);
  const std::vector<std::size_t> counts{25, 50, 100};
  const auto optimal = run_deployment(
      ds, deployment_order(ds, DeploymentStrategy::kOptimal, 0), counts,
      CurveMetric::kIncentiveDpCdp);
  const auto random = run_random_trials(ds, counts,
                                        CurveMetric::kIncentiveDpCdp, 10, 3);
  const auto uniform = run_uniform_deployment(ds.as_count(), counts,
                                              CurveMetric::kIncentiveDpCdp);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_GT(optimal.values[i], random.values[i]);
    // With a heavy tail, random >= uniform in expectation at small counts.
    EXPECT_GT(random.values[i], uniform.values[i] * 0.5);
  }
}

TEST(RunRandomTrialsTest, DeterministicAndAveraged) {
  const auto ds = four_as_internet();
  const std::vector<std::size_t> counts{1, 2, 3};
  const auto a = run_random_trials(ds, counts, CurveMetric::kCumulatedRatio,
                                   8, 42);
  const auto b = run_random_trials(ds, counts, CurveMetric::kCumulatedRatio,
                                   8, 42);
  EXPECT_EQ(a.values, b.values);
  // Mean cumulated ratio after k of 4 random ASes is k/4.
  EXPECT_NEAR(a.values[1], 0.5, 0.15);
}

TEST(DefaultSampleCountsTest, IncludesAnchorsAndEndpoints) {
  const auto counts = default_sample_counts(44036, 20);
  EXPECT_EQ(counts.front(), 0u);
  EXPECT_EQ(counts.back(), 44036u);
  EXPECT_TRUE(std::find(counts.begin(), counts.end(), 50u) != counts.end());
  EXPECT_TRUE(std::find(counts.begin(), counts.end(), 629u) != counts.end());
  EXPECT_TRUE(std::is_sorted(counts.begin(), counts.end()));
}

// The supplementary-material theorem: choosing the m largest ASes maximizes
// the follower incentive. Verified via the exchange argument — swapping any
// deployed AS for any larger undeployed one never decreases the incentive —
// and by exhaustive search on small instances.
class OptimalStrategyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalStrategyProperty, ExchangeArgumentHolds) {
  Xoshiro256 rng(GetParam());
  std::vector<double> r(30);
  double sum = 0;
  for (auto& x : r) {
    x = rng.uniform() + 0.01;
    if (rng.chance(0.2)) x *= 8;
    sum += x;
  }
  for (auto& x : r) x /= sum;

  // Fixed victim: the smallest AS (never deployed in any considered set).
  const std::size_t victim =
      static_cast<std::size_t>(std::min_element(r.begin(), r.end()) - r.begin());
  auto incentive = [&](const std::vector<std::size_t>& set) {
    double s1 = 0, s2 = 0;
    for (std::size_t i : set) {
      s1 += r[i];
      s2 += r[i] * r[i];
    }
    return (s1 - s2) + s1 * (1.0 - r[victim] - s1);
  };

  for (int trial = 0; trial < 50; ++trial) {
    // Random deployment set of size 8, excluding the victim.
    std::vector<std::size_t> set;
    while (set.size() < 8) {
      const std::size_t cand = rng.below(30);
      if (cand != victim &&
          std::find(set.begin(), set.end(), cand) == set.end()) {
        set.push_back(cand);
      }
    }
    const double base = incentive(set);
    // Swap each member for each larger non-member: must not decrease,
    // provided the set stays on the "incentive is increasing" side
    // (S1 <= the stationary point); with these sizes S1 < 1 and the
    // exchange derivative (1 - 2 S1 + corrections) stays positive when the
    // replacement is larger. Verify the theorem's statement directly:
    // replacing a member with a strictly larger AS never hurts while
    // d(inc)/d(r) = 1 - r_v - 2 S1 + ... >= 0; rather than re-deriving,
    // check against the strongest form the data supports: the all-largest
    // set beats every random set of the same size.
    std::vector<std::size_t> order(30);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return r[a] > r[b]; });
    std::vector<std::size_t> largest;
    for (std::size_t i : order) {
      if (i != victim && largest.size() < 8) largest.push_back(i);
    }
    EXPECT_GE(incentive(largest), base - 1e-12);
  }
}

TEST_P(OptimalStrategyProperty, LargestSetIsExhaustivelyOptimalOnTinyInstances) {
  Xoshiro256 rng(GetParam() ^ 0xabc);
  // 8 ASes, choose 3 deployers, victim = index 7 (forced smallest).
  std::vector<double> r(8);
  double sum = 0;
  for (auto& x : r) {
    x = rng.uniform() + 0.05;
    sum += x;
  }
  r[7] = 0.01;  // tiny victim
  sum += 0.01 - r[7];
  for (auto& x : r) x /= sum;

  auto incentive = [&](std::uint32_t mask) {
    double s1 = 0, s2 = 0;
    for (std::size_t i = 0; i < 7; ++i) {
      if (mask & (1u << i)) {
        s1 += r[i];
        s2 += r[i] * r[i];
      }
    }
    return (s1 - s2) + s1 * (1.0 - r[7] - s1);
  };

  double best = -1;
  std::uint32_t best_mask = 0;
  for (std::uint32_t mask = 0; mask < (1u << 7); ++mask) {
    if (__builtin_popcount(mask) != 3) continue;
    const double inc = incentive(mask);
    if (inc > best) {
      best = inc;
      best_mask = mask;
    }
  }
  // The winning mask must consist of the 3 largest ASes (ties permitted:
  // compare values, not indices).
  std::vector<double> chosen;
  for (std::size_t i = 0; i < 7; ++i) {
    if (best_mask & (1u << i)) chosen.push_back(r[i]);
  }
  std::vector<double> sizes(r.begin(), r.begin() + 7);
  std::sort(sizes.rbegin(), sizes.rend());
  std::sort(chosen.rbegin(), chosen.rend());
  for (int k = 0; k < 3; ++k) EXPECT_DOUBLE_EQ(chosen[static_cast<std::size_t>(k)], sizes[static_cast<std::size_t>(k)]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalStrategyProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DeploymentStateTest, RejectsEmptyRatios) {
  EXPECT_THROW(DeploymentState({}), std::invalid_argument);
}

}  // namespace
}  // namespace discs

// Property tests: the O(1) closed forms in eval/deployment must equal
// brute-force triple summation over random small internets, for random
// deployment sets — for every metric.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "eval/deployment.hpp"
#include "eval/flowsim.hpp"

namespace discs {
namespace {

struct World {
  std::vector<double> r;               // ratios, sum to 1
  std::vector<bool> deployed;          // D membership per index
  double s1 = 0, s2 = 0;
};

World random_world(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  World w;
  w.r.resize(n);
  double sum = 0;
  for (auto& x : w.r) {
    x = rng.uniform() + 0.01;
    // Occasionally spike an AS to make the distribution lumpy.
    if (rng.chance(0.2)) x *= 10;
    sum += x;
  }
  for (auto& x : w.r) x /= sum;
  w.deployed.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    w.deployed[i] = rng.chance(0.4);
    if (w.deployed[i]) {
      w.s1 += w.r[i];
      w.s2 += w.r[i] * w.r[i];
    }
  }
  return w;
}

class ClosedFormProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClosedFormProperty, EffectivenessMatchesBruteForce) {
  const World w = random_world(GetParam(), 12);
  const std::size_t n = w.r.size();

  DeploymentState state(w.r);
  for (std::size_t i = 0; i < n; ++i) {
    if (w.deployed[i]) state.deploy(i);
  }

  // Brute force: always-on semantics (see eval/deployment.hpp).
  double brute = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t v = 0; v < n; ++v) {
        if (a == v) continue;
        const bool end_leg = w.deployed[a] && i != a;
        const bool crypto_leg =
            w.deployed[v] && w.deployed[i] && a != i && i != v;
        if (end_leg || crypto_leg) brute += w.r[a] * w.r[i] * w.r[v];
      }
    }
  }
  EXPECT_NEAR(state.effectiveness(), brute, 1e-12);
}

TEST_P(ClosedFormProperty, AverageIncentivesMatchBruteForce) {
  const World w = random_world(GetParam() ^ 0x5a5a, 12);
  const std::size_t n = w.r.size();

  DeploymentState state(w.r);
  for (std::size_t i = 0; i < n; ++i) {
    if (w.deployed[i]) state.deploy(i);
  }

  // Brute-force per-victim incentives, averaged over LASes weighted by r_v.
  double num_dp = 0, num_cdp = 0, num_both = 0, den = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (w.deployed[v]) continue;
    double inc_dp = 0, inc_cdp = 0, inc_both = 0;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t i = 0; i < n; ++i) {
        if (a == v) continue;  // flows from the victim itself are intra-AS
        const double p = w.r[a] * w.r[i];
        const bool dp = w.deployed[a] && i != a;
        const bool cdp = w.deployed[i] && a != i && i != v;
        inc_dp += dp ? p : 0;
        inc_cdp += cdp ? p : 0;
        inc_both += (dp || cdp) ? p : 0;
      }
    }
    num_dp += w.r[v] * inc_dp;
    num_cdp += w.r[v] * inc_cdp;
    num_both += w.r[v] * inc_both;
    den += w.r[v];
  }
  ASSERT_GT(den, 0.0);

  // Note the closed forms' exclusions are exact here: a == v and i == v
  // collisions with a, i in D cannot occur because v is never deployed.
  EXPECT_NEAR(state.avg_incentive_dp(), num_dp / den, 1e-12);
  EXPECT_NEAR(state.avg_incentive_cdp(), num_cdp / den, 1e-12);
  EXPECT_NEAR(state.avg_incentive_dp_cdp(), num_both / den, 1e-12);
}

TEST_P(ClosedFormProperty, FlowPredicateAgreesWithBruteForcePredicate) {
  const World w = random_world(GetParam() ^ 0x77, 10);
  const std::size_t n = w.r.size();
  std::unordered_set<AsNumber> deployed;
  for (std::size_t i = 0; i < n; ++i) {
    if (w.deployed[i]) deployed.insert(static_cast<AsNumber>(i + 1));
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t v = 0; v < n; ++v) {
        const SpoofFlow flow{static_cast<AsNumber>(a + 1),
                             static_cast<AsNumber>(i + 1),
                             static_cast<AsNumber>(v + 1), AttackType::kDirect};
        const bool end_leg = a != v && w.deployed[a] && i != a;
        const bool crypto_leg = a != v && w.deployed[v] && w.deployed[i] &&
                                a != i && i != v;
        EXPECT_EQ(discs_filters_flow(flow, deployed, InvocationModel::kAlwaysOn),
                  end_leg || crypto_leg);
        EXPECT_EQ(discs_filters_flow(flow, deployed, InvocationModel::kOnDemand),
                  w.deployed[v] && (end_leg || crypto_leg));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosedFormProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace discs

#include "eval/flowsim.hpp"

#include <gtest/gtest.h>

#include "eval/deployment.hpp"
#include "topology/synthetic.hpp"

namespace discs {
namespace {

TEST(DiscsFiltersFlowTest, TruthTable) {
  const std::unordered_set<AsNumber> deployed{1, 2, 3};
  // v not deployed -> never filtered.
  EXPECT_FALSE(discs_filters_flow({1, 2, 9, AttackType::kDirect}, deployed));
  // v deployed, agent deployed, i != a -> end-based filter fires.
  EXPECT_TRUE(discs_filters_flow({1, 9, 2, AttackType::kDirect}, deployed));
  // v deployed, innocent deployed, a != i -> crypto filter fires.
  EXPECT_TRUE(discs_filters_flow({9, 1, 2, AttackType::kDirect}, deployed));
  // neither a nor i deployed -> passes.
  EXPECT_FALSE(discs_filters_flow({8, 9, 2, AttackType::kDirect}, deployed));
  // agent == victim -> intra-AS, out of scope.
  EXPECT_FALSE(discs_filters_flow({2, 1, 2, AttackType::kDirect}, deployed));
  // agent spoofing its own AS space evades both legs.
  EXPECT_FALSE(discs_filters_flow({9, 9, 2, AttackType::kDirect}, deployed));
  // reflection flows use the identical predicate (role symmetry).
  EXPECT_TRUE(discs_filters_flow({1, 9, 2, AttackType::kReflection}, deployed));
}

TEST(FlowSimTest, EmptyDeploymentFiltersNothing) {
  SyntheticConfig cfg;
  cfg.num_ases = 200;
  cfg.num_prefixes = 2000;
  const auto ds = generate_dataset(cfg);
  const auto result = simulate_effectiveness(ds, {}, AttackType::kDirect,
                                             5000, 1);
  EXPECT_EQ(result.filtered, 0u);
  EXPECT_DOUBLE_EQ(result.fraction(), 0.0);
}

TEST(FlowSimTest, MonteCarloMatchesClosedFormEffectiveness) {
  SyntheticConfig cfg;
  cfg.num_ases = 500;
  cfg.num_prefixes = 5000;
  const auto ds = generate_dataset(cfg);

  // Deploy the 50 largest ASes.
  const auto order = deployment_order(ds, DeploymentStrategy::kOptimal, 0);
  auto state = DeploymentState::from_dataset(ds);
  std::unordered_set<AsNumber> deployed;
  for (std::size_t i = 0; i < 50; ++i) {
    state.deploy(order[i]);
    deployed.insert(ds.as_numbers()[order[i]]);
  }

  const auto mc = simulate_effectiveness(ds, deployed, AttackType::kDirect,
                                         200000, 7);
  // Sampler conditions on distinct (a, i, v); renormalize the closed form
  // by the collision-free probability, which is within a few permil of 1.
  EXPECT_NEAR(mc.fraction(), state.effectiveness(), 0.02);

  const auto mc_refl = simulate_effectiveness(ds, deployed,
                                              AttackType::kReflection, 200000, 8);
  EXPECT_NEAR(mc_refl.fraction(), mc.fraction(), 0.01);
}

TEST(FlowSimTest, MonteCarloMatchesClosedFormIncentive) {
  SyntheticConfig cfg;
  cfg.num_ases = 400;
  cfg.num_prefixes = 4000;
  const auto ds = generate_dataset(cfg);
  const auto order = deployment_order(ds, DeploymentStrategy::kOptimal, 0);

  std::unordered_set<AsNumber> deployed;
  double s1 = 0, s2 = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const AsNumber as = ds.as_numbers()[order[i]];
    deployed.insert(as);
    s1 += ds.ratio(as);
    s2 += ds.ratio(as) * ds.ratio(as);
  }
  // Pick a mid-sized LAS as the victim.
  AsNumber victim = kNoAs;
  for (std::size_t i = 100; i < 400; ++i) {
    const AsNumber as = ds.as_numbers()[order[i]];
    if (!deployed.contains(as)) {
      victim = as;
      break;
    }
  }
  ASSERT_NE(victim, kNoAs);
  const double r_v = ds.ratio(victim);

  const auto mc = simulate_incentive(ds, deployed, victim,
                                     AttackType::kDirect, 200000, 9);
  // Closed form inc_DP+CDP(D, v) = (S1-S2) + S1(1 - r_v - S1); the sampler
  // conditions on distinct roles, matching the formula's exclusions.
  const double closed = (s1 - s2) + s1 * (1.0 - r_v - s1);
  EXPECT_NEAR(mc.fraction(), closed, 0.02);
}

TEST(FlowSimTest, DeterministicUnderSeed) {
  SyntheticConfig cfg;
  cfg.num_ases = 100;
  cfg.num_prefixes = 1000;
  const auto ds = generate_dataset(cfg);
  const std::unordered_set<AsNumber> deployed{1, 2, 3, 4, 5};
  const auto a = simulate_effectiveness(ds, deployed, AttackType::kDirect, 1000, 3);
  const auto b = simulate_effectiveness(ds, deployed, AttackType::kDirect, 1000, 3);
  EXPECT_EQ(a.filtered, b.filtered);
}

}  // namespace
}  // namespace discs

#include <gtest/gtest.h>

#include <cmath>

#include "eval/cost.hpp"
#include "eval/security.hpp"
#include "topology/synthetic.hpp"

namespace discs {
namespace {

// §VI-C.1 quotes: 1.6 MB AS table, 31.5 MB prefix table, 430 MB SSL,
// 463.1 MB total; 6.1 rekeys/min, 1.1 invocations/min, 147 conn/s,
// ~7.3% CPU, 1.76 Mbps — at 43k ASes / 442k prefixes.
TEST(ControllerCostTest, ReproducesPaperNumbers) {
  const auto cost = controller_cost(43000, 442000);
  EXPECT_NEAR(cost.as_table_mb, 1.6, 0.1);
  EXPECT_NEAR(cost.prefix_table_mb, 31.5, 1.0);
  EXPECT_NEAR(cost.ssl_sessions_mb, 430, 15);
  EXPECT_NEAR(cost.total_mb, 463.1, 15);
  EXPECT_NEAR(cost.rekeys_per_minute, 6.1, 0.3);
  EXPECT_NEAR(cost.invocations_per_minute, 1.1, 0.05);
  EXPECT_NEAR(cost.ssl_conns_per_second_under_attack, 147, 5);
  EXPECT_NEAR(cost.cpu_utilization, 0.073, 0.005);
  EXPECT_NEAR(cost.bandwidth_mbps, 1.76, 0.1);
}

TEST(ControllerCostTest, ScalesLinearlyInAsCount) {
  const auto half = controller_cost(21500, 442000);
  const auto full = controller_cost(43000, 442000);
  EXPECT_NEAR(half.ssl_sessions_mb * 2, full.ssl_sessions_mb, 1e-9);
  EXPECT_NEAR(half.rekeys_per_minute * 2, full.rekeys_per_minute, 1e-9);
}

// §VI-C.2 quotes: 3.5 MB SRAM, 43k*32b CAM, 8 / 5.33 Mpps and
// 26.25 / 18.33 Gbps for IPv4 / IPv6 on a 2 Gbps CMAC core.
TEST(RouterCostTest, ReproducesPaperNumbers) {
  const auto cost = router_cost(43000, 442000);
  EXPECT_NEAR(cost.sram_mb, 3.5, 0.2);
  EXPECT_NEAR(cost.cam_kb, 43000 * 32 / 8 / 1024.0, 0.01);
  EXPECT_NEAR(cost.hw_mpps_ipv4, 8.0, 0.5);
  EXPECT_NEAR(cost.hw_mpps_ipv6, 5.33, 0.3);
  EXPECT_NEAR(cost.hw_gbps_ipv4, 26.25, 1.5);
  EXPECT_NEAR(cost.hw_gbps_ipv6, 18.33, 1.0);
}

TEST(NetworkOverheadTest, MatchesPaperAt400BytePayload) {
  const auto overhead = network_overhead(400);
  EXPECT_DOUBLE_EQ(overhead.ipv4_goodput_loss, 0.0);
  EXPECT_NEAR(overhead.ipv6_goodput_loss, 0.016, 0.003);
}

TEST(NetworkOverheadTest, ShrinksWithLargerPayloads) {
  EXPECT_GT(network_overhead(100).ipv6_goodput_loss,
            network_overhead(1400).ipv6_goodput_loss);
}

// §VI-E1: 2^28 expected packets for IPv4 (29-bit marks), 2^31 for IPv6
// (32-bit); halved while two keys verify during a re-key.
TEST(ForgeryModelTest, ExpectedAttemptsMatchPaper) {
  EXPECT_NEAR(forgery_expected_attempts(29, 1), double(1u << 28), 1.0);
  EXPECT_NEAR(forgery_expected_attempts(32, 1), double(1ull << 31), 1.0);
  EXPECT_NEAR(forgery_expected_attempts(29, 2), double(1u << 27), 1.0);
  EXPECT_NEAR(forgery_expected_attempts(32, 2), double(1u << 30), 1.0);
}

TEST(ForgeryTrialsTest, MeasuredRateMatchesExpectedRate) {
  // 12-bit marks keep the experiment tractable: expected rate 1/4096.
  const auto result = run_forgery_trials(12, 400000, 1, 99);
  EXPECT_NEAR(result.success_rate, result.expected_rate,
              3 * std::sqrt(result.expected_rate / 400000));  // ~3 sigma
  EXPECT_GT(result.successes, 0u);
}

TEST(ForgeryTrialsTest, RekeyWindowDoublesSuccessRate) {
  const auto one = run_forgery_trials(10, 300000, 1, 7);
  const auto two = run_forgery_trials(10, 300000, 2, 7);
  EXPECT_NEAR(two.success_rate / one.success_rate, 2.0, 0.5);
}

TEST(KeyLeakageTest, ExposureMatchesClosedForm) {
  InternetDataset ds({
      {*Prefix4::parse("8.0.0.0/7"), {1}},    // r = 0.5
      {*Prefix4::parse("10.0.0.0/8"), {2}},   // r = 0.25
      {*Prefix4::parse("12.0.0.0/9"), {3}},   // r = 0.125
      {*Prefix4::parse("12.128.0.0/9"), {4}}, // r = 0.125
  });
  // D = {1, 2}; AS 2's keys leak. S1 = 0.75, peers_mass = 0.5,
  // outside = 0.25 -> 2 * 0.25 * 0.5 * 0.25 = 0.0625.
  EXPECT_DOUBLE_EQ(key_leakage_exposure(ds, {1, 2}, 2), 0.0625);
  // Leaking a larger AS exposes more (|D| = 3 breaks the two-member
  // symmetry: 2*0.5*0.375*0.125 vs 2*0.25*0.625*0.125).
  EXPECT_GT(key_leakage_exposure(ds, {1, 2, 3}, 1),
            key_leakage_exposure(ds, {1, 2, 3}, 2));
  // Leaking a non-deployer exposes nothing.
  EXPECT_DOUBLE_EQ(key_leakage_exposure(ds, {1, 2}, 3), 0.0);
}

}  // namespace
}  // namespace discs

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "eval/load.hpp"
#include "eval/report.hpp"
#include "topology/synthetic.hpp"

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }

TEST(CurveSetTest, AddChecksAxes) {
  CurveSet curves;
  curves.title = "t";
  curves.x_label = "deployers";
  DeploymentCurve a{{1, 2, 3}, {0.1, 0.2, 0.3}};
  DeploymentCurve b{{1, 2, 3}, {0.4, 0.5, 0.6}};
  DeploymentCurve mismatched{{1, 2}, {0.4, 0.5}};
  curves.add("a", a);
  curves.add("b", b);
  EXPECT_THROW(curves.add("bad", mismatched), std::invalid_argument);
  EXPECT_EQ(curves.series.size(), 2u);
}

TEST(ReportTest, CsvFormat) {
  CurveSet curves;
  curves.x_label = "n";
  curves.add("optimal", {{1, 2}, {0.5, 0.75}});
  curves.add("random", {{1, 2}, {0.1, 0.2}});
  std::ostringstream out;
  write_csv(out, curves);
  EXPECT_EQ(out.str(), "n,optimal,random\n1,0.5,0.1\n2,0.75,0.2\n");
}

TEST(ReportTest, GnuplotFormat) {
  CurveSet curves;
  curves.title = "Figure 6b";
  curves.x_label = "deployers";
  curves.add("optimal", {{5}, {0.5}});
  std::ostringstream out;
  write_gnuplot(out, curves);
  const std::string text = out.str();
  EXPECT_NE(text.find("# Figure 6b"), std::string::npos);
  EXPECT_NE(text.find("5\t0.5"), std::string::npos);
}

TEST(ReportTest, WritesArtifactsToDisk) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "discs_report_test").string();
  std::filesystem::remove_all(dir);
  CurveSet curves;
  curves.title = "t";
  curves.x_label = "x";
  curves.add("s", {{1}, {2.0}});
  const auto csv_path = write_artifacts(dir, "fig_test", curves);
  EXPECT_TRUE(std::filesystem::exists(csv_path));
  EXPECT_TRUE(std::filesystem::exists(dir + "/fig_test.dat"));
  std::ifstream in(csv_path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,s");
  std::filesystem::remove_all(dir);
}

TEST(LoadModelTest, SingleVictimLoadMatchesFormula) {
  InternetDataset ds({
      {pfx("8.0.0.0/7"), {1}},    // r = 0.5
      {pfx("10.0.0.0/8"), {2}},   // r = 0.25
      {pfx("12.0.0.0/8"), {3}},   // r = 0.25
  });
  // Protect AS 2 (r = 0.25): load = 2*0.25 - 0.0625.
  EXPECT_DOUBLE_EQ(processing_load_fraction(ds, {2}), 0.4375);
  // Duplicates don't double-count.
  EXPECT_DOUBLE_EQ(processing_load_fraction(ds, {2, 2}), 0.4375);
  // Protecting everything processes everything.
  EXPECT_DOUBLE_EQ(processing_load_fraction(ds, {1, 2, 3}), 1.0);
  // Protecting nothing processes nothing — the on-demand baseline.
  EXPECT_DOUBLE_EQ(processing_load_fraction(ds, {}), 0.0);
}

TEST(LoadModelTest, OnDemandLoadIsTinyAtPaperScale) {
  // At snapshot scale with the paper's 1611 attacks/day and 24 h durations,
  // the expected concurrently protected mass is small: on-demand processing
  // touches a small fraction of global traffic, versus 100% for always-on
  // methods — §IV-E's cost claim quantified.
  SyntheticConfig cfg;
  cfg.num_ases = 4000;
  cfg.num_prefixes = 40000;
  const auto ds = generate_dataset(cfg);
  const double load = expected_on_demand_load(ds, 1611, 24);
  EXPECT_GT(load, 0.0);
  EXPECT_LT(load, 0.6);  // far from the always-on 1.0 even with 1611 attacks
  // Shorter attacks -> proportionally less load.
  EXPECT_LT(expected_on_demand_load(ds, 1611, 1),
            expected_on_demand_load(ds, 1611, 24));
}

}  // namespace
}  // namespace discs

// Chaos convergence suite (ISSUE 4 tentpole proof): the control plane must
// reach the same steady state over a hostile con-con channel — message
// loss, duplication, reordering, latency jitter, and timed partitions — as
// it does over a perfect one. Every trial is fully deterministic (seeded
// FaultPlan + seeded controllers over the discrete-event loop), so a
// failing seed reproduces exactly.
//
// The companion lossless check pins that the fault layer is pay-for-play:
// an explicitly installed FaultPlan{} draws no randomness and produces
// byte-for-byte the ChannelStats of a channel that never heard of faults.
//
// The driver accepts two telemetry flags in addition to the gtest ones
// (defining our own main keeps gtest_main's out of the link):
//   --trace FILE    write a Chrome trace_event JSON of every trial's
//                   control-plane activity (peering/re-key spans,
//                   invocation windows, delivery failures)
//   --metrics FILE  write a metrics JSON snapshot; each ChaosWorld folds
//                   its channel/fault/reliability counters into the global
//                   registry at teardown
#include "control/controller.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

// Set from main before RUN_ALL_TESTS; the tracer outlives every world.
discs::telemetry::SimTracer g_tracer;
bool g_trace_enabled = false;

}  // namespace

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }

/// Root of the per-trial seed derivation. CI sweeps a small matrix of
/// roots via DISCS_CHAOS_ROOT_SEED; every root in the matrix is pinned
/// (each run is still fully deterministic, never sampled).
std::uint64_t chaos_root_seed() {
  if (const char* env = std::getenv("DISCS_CHAOS_ROOT_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xc4a05;
}

/// Three DASes (AS 1..3) plus a legacy AS 4, mirroring the controller
/// integration fixture, assembled on a caller-provided channel so each
/// trial owns an independent loop + fault stream.
struct ChaosWorld {
  explicit ChaosWorld(const FaultPlan& plan, ReliabilityConfig reliability) {
    if (!plan.lossless()) net.set_fault_plan(plan);
    for (AsNumber as : {AsNumber{1}, AsNumber{2}, AsNumber{3}}) {
      ControllerConfig cfg;
      cfg.as = as;
      cfg.seed = as * 1000 + 7;
      cfg.max_peering_delay = 2 * kSecond;
      cfg.reliability = reliability;
      controllers.push_back(
          std::make_unique<Controller>(cfg, loop, net, rpki));
    }
    for (auto& a : controllers) {
      for (auto& b : controllers) {
        if (a != b) b->discover(a->advertisement());
      }
    }
    if (g_trace_enabled) {
      // set_tracer names each controller's track itself.
      for (auto& c : controllers) c->set_tracer(&g_tracer);
    }
  }

  /// Folds this world's channel, fault, and reliability counters into the
  /// global registry. Worlds are per-trial and die with their controllers,
  /// so the counters are accumulated by value at teardown instead of
  /// leaving pull-mode collectors behind over freed objects.
  ~ChaosWorld() {
    auto& reg = telemetry::MetricsRegistry::global();
    reg.counter("discs_chaos_worlds_total").add();
    const FaultStats& f = net.fault_stats();
    reg.counter("discs_chaos_faults_total", "", {{"fault", "drop"}})
        .add(f.dropped);
    reg.counter("discs_chaos_faults_total", "", {{"fault", "duplicate"}})
        .add(f.duplicated);
    reg.counter("discs_chaos_faults_total", "", {{"fault", "partition"}})
        .add(f.partition_drops);
    const ChannelStats& ch = net.stats();
    reg.counter("discs_chaos_channel_messages_total").add(ch.messages);
    reg.counter("discs_chaos_channel_bytes_total").add(ch.bytes);
    reg.counter("discs_chaos_channel_handshakes_total").add(ch.handshakes);
    ReliabilityStats rs;
    for (const auto& c : controllers) {
      const ReliabilityStats& s = c->link().stats();
      rs.reliable_sends += s.reliable_sends;
      rs.retransmits += s.retransmits;
      rs.delivery_failures += s.delivery_failures;
      rs.duplicates_suppressed += s.duplicates_suppressed;
    }
    reg.counter("discs_chaos_reliable_sends_total").add(rs.reliable_sends);
    reg.counter("discs_chaos_retransmits_total").add(rs.retransmits);
    reg.counter("discs_chaos_delivery_failures_total")
        .add(rs.delivery_failures);
    reg.counter("discs_chaos_duplicates_suppressed_total")
        .add(rs.duplicates_suppressed);
  }

  Controller& as(AsNumber n) { return *controllers[n - 1]; }

  [[nodiscard]] std::size_t total_windows() const {
    std::size_t windows = 0;
    for (const auto& c : controllers) {
      const RouterTables& t = c->tables();
      windows += t.in_src.window_count() + t.in_dst.window_count() +
                 t.out_src.window_count() + t.out_dst.window_count();
    }
    return windows;
  }

  InternetDataset rpki{{{pfx("10.0.0.0/8"), {1}},
                        {pfx("20.0.0.0/8"), {2}},
                        {pfx("30.0.0.0/8"), {3}},
                        {pfx("40.0.0.0/8"), {4}}}};
  EventLoop loop;
  ConConNetwork net{loop, 10 * kMillisecond};
  std::vector<std::unique_ptr<Controller>> controllers;
};

/// Both key directions of a peered pair agree end to end: the stamping key
/// each side holds toward the other equals the verification key the other
/// holds for it, and no grace key lingers.
void expect_pair_key_consistent(Controller& a, Controller& b) {
  ASSERT_TRUE(a.is_peer(b.as_number()))
      << a.as_number() << " does not peer " << b.as_number();
  ASSERT_TRUE(b.is_peer(a.as_number()));
  const auto* stamp = a.tables().key_s.find(b.as_number());
  const auto* verify = b.tables().key_v.find(a.as_number());
  ASSERT_NE(stamp, nullptr);
  ASSERT_NE(verify, nullptr);
  EXPECT_EQ(stamp->active, verify->active)
      << "key_{" << a.as_number() << "," << b.as_number() << "} diverged";
  EXPECT_FALSE(verify->previous.has_value())
      << "grace key never dropped for key_{" << a.as_number() << ","
      << b.as_number() << "}";
}

/// One full control-plane life cycle under the given plan: discovery +
/// peering, a re-key round that straddles a partition between AS 1 and
/// AS 2, and an invocation whose windows must deploy and then expire
/// without leaving orphans.
void run_chaos_trial(const FaultPlan& plan) {
  ReliabilityConfig reliability;
  // 30% loss per copy means a retry round trip fails with p ~ 0.51; twelve
  // transmissions push a delivery failure below ~3e-4 per message, and the
  // fixed seeds below are verified to converge with zero failures.
  reliability.max_retries = 12;
  ChaosWorld world(plan, reliability);

  // Phase 1: peering + initial keys converge despite the chaos.
  world.loop.run_until(60 * kSecond);
  for (auto& a : world.controllers) {
    for (auto& b : world.controllers) {
      if (a != b) expect_pair_key_consistent(*a, *b);
    }
  }

  // Phase 2: AS 1 re-keys every peer at t=70s — inside the 70s..73s
  // partition toward AS 2, so that pair's KeyInstall/acks must survive on
  // retransmits alone until the partition heals.
  world.loop.run_until(70 * kSecond);
  world.as(1).rekey_all_peers();
  world.loop.run_until(140 * kSecond);
  EXPECT_GE(world.as(1).stats().rekeys_completed, 2u);
  for (auto& a : world.controllers) {
    for (auto& b : world.controllers) {
      if (a != b) expect_pair_key_consistent(*a, *b);
    }
  }

  // Phase 3: an invocation with a short window. After the retransmit tail
  // plus the window plus the expiry sweep, every function table must be
  // empty again (deployed-then-expired, never orphaned) and the peers'
  // epochs must have advanced (the installs really applied).
  const TableEpoch epoch2 = world.as(2).tables().applied_epoch();
  const TableEpoch epoch3 = world.as(3).tables().applied_epoch();
  EXPECT_EQ(world.as(1).invoke_ddos_defense(pfx("10.1.0.0/16"),
                                            /*spoofed_source=*/false,
                                            20 * kSecond),
            2u);
  world.loop.run_until(world.loop.now() + 90 * kSecond);
  EXPECT_GE(world.as(2).stats().invocations_received, 1u);
  EXPECT_GE(world.as(3).stats().invocations_received, 1u);
  EXPECT_GT(world.as(2).tables().applied_epoch(), epoch2);
  EXPECT_GT(world.as(3).tables().applied_epoch(), epoch3);
  EXPECT_EQ(world.total_windows(), 0u) << "orphaned function windows";

  // Reliability invariants: the chaos really bit (faults injected, repairs
  // happened), retransmission stayed bounded by the cap, and nothing was
  // abandoned.
  EXPECT_GT(world.net.fault_stats().dropped, 0u);
  EXPECT_GT(world.net.fault_stats().duplicated, 0u);
  for (auto& c : world.controllers) {
    const ReliabilityStats& rs = c->link().stats();
    EXPECT_EQ(rs.delivery_failures, 0u)
        << "AS " << c->as_number() << " abandoned a message";
    EXPECT_LE(rs.retransmits,
              rs.reliable_sends *
                  static_cast<std::uint64_t>(reliability.max_retries));
    EXPECT_EQ(c->link().pending_count(), 0u)
        << "AS " << c->as_number() << " still has unsettled sends";
  }
  const ReliabilityStats& rs1 = world.as(1).link().stats();
  EXPECT_GT(rs1.retransmits + rs1.duplicates_suppressed, 0u)
      << "chaos plan produced no observable repair work";
}

TEST(ChaosTest, ConvergesUnderLossDuplicationAndReordering) {
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    FaultPlan plan;
    plan.drop_probability = 0.3;
    plan.duplicate_probability = 0.1;
    plan.reorder_window = 50 * kMillisecond;
    plan.latency_jitter = 20 * kMillisecond;
    plan.partitions = {{1, 2, 70 * kSecond, 73 * kSecond}};
    plan.seed = derive_seed(chaos_root_seed(), trial);
    run_chaos_trial(plan);
  }
}

TEST(ChaosTest, PartitionOnlyPlanHealsByRetransmission) {
  // No random faults at all — just a hard 5 s outage between AS 1 and AS 2
  // right as peering starts. The pair must still converge once it heals.
  FaultPlan plan;
  plan.partitions = {{1, 2, 0, 5 * kSecond}};
  ReliabilityConfig reliability;
  reliability.max_retries = 12;
  ChaosWorld world(plan, reliability);
  world.loop.run_until(60 * kSecond);
  expect_pair_key_consistent(world.as(1), world.as(2));
  expect_pair_key_consistent(world.as(2), world.as(1));
  EXPECT_GT(world.net.fault_stats().partition_drops, 0u);
  for (auto& c : world.controllers) {
    EXPECT_EQ(c->link().stats().delivery_failures, 0u);
  }
}

/// Runs the reference scenario (peer, re-key, invoke, drain) and returns
/// the channel's cost accounting.
ChannelStats run_reference_scenario(bool install_lossless_plan,
                                    FaultStats* fault_stats) {
  ChaosWorld world(FaultPlan{}, ReliabilityConfig{});
  if (install_lossless_plan) world.net.set_fault_plan(FaultPlan{});
  world.loop.run_until(30 * kSecond);
  world.as(1).rekey_all_peers();
  world.loop.run_until(40 * kSecond);
  world.as(1).invoke_ddos_defense(pfx("10.1.0.0/16"), false, 5 * kSecond);
  world.loop.run_until(60 * kSecond);
  if (fault_stats != nullptr) *fault_stats = world.net.fault_stats();
  return world.net.stats();
}

TEST(ChaosTest, LosslessFaultPlanReproducesChannelStatsExactly) {
  FaultStats faults;
  const ChannelStats baseline = run_reference_scenario(false, nullptr);
  const ChannelStats with_plan = run_reference_scenario(true, &faults);

  EXPECT_EQ(baseline.messages, with_plan.messages);
  EXPECT_EQ(baseline.bytes, with_plan.bytes);
  EXPECT_EQ(baseline.handshakes, with_plan.handshakes);
  EXPECT_EQ(baseline.session_resumptions, with_plan.session_resumptions);
  EXPECT_EQ(baseline.peak_concurrent_sessions, with_plan.peak_concurrent_sessions);
  EXPECT_EQ(baseline.sessions_expired, with_plan.sessions_expired);
  EXPECT_TRUE(baseline == with_plan);  // the defaulted operator== agrees
  EXPECT_TRUE(faults == FaultStats{});  // and the fault layer never fired
}

}  // namespace
}  // namespace discs

/// gtest_main replacement: strips --trace/--metrics before InitGoogleTest,
/// runs the suite, then persists the telemetry artifacts. CI validates both
/// files as JSON, so a write failure must fail the run even when every
/// test passed.
int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::vector<char*> gtest_args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      gtest_args.push_back(argv[i]);
    }
  }
  int gtest_argc = static_cast<int>(gtest_args.size());
  ::testing::InitGoogleTest(&gtest_argc, gtest_args.data());

  if (!trace_path.empty()) {
    g_trace_enabled = true;
    g_tracer.set_process_name("chaos_test");
  }
  const int rc = RUN_ALL_TESTS();

  bool io_ok = true;
  if (!trace_path.empty() && !g_tracer.write(trace_path)) {
    std::fprintf(stderr, "chaos_test: cannot write trace to %s\n",
                 trace_path.c_str());
    io_ok = false;
  }
  if (!metrics_path.empty() &&
      !discs::telemetry::write_metrics_json(
          discs::telemetry::MetricsRegistry::global(), metrics_path)) {
    std::fprintf(stderr, "chaos_test: cannot write metrics to %s\n",
                 metrics_path.c_str());
    io_ok = false;
  }
  return io_ok ? rc : (rc != 0 ? rc : 1);
}

// Chaos convergence suite (ISSUE 4 tentpole proof): the control plane must
// reach the same steady state over a hostile con-con channel — message
// loss, duplication, reordering, latency jitter, and timed partitions — as
// it does over a perfect one. Every trial is fully deterministic (seeded
// FaultPlan + seeded controllers over the discrete-event loop), so a
// failing seed reproduces exactly.
//
// The worlds are built from ONE scenario template (kChaosTemplate below) in
// the scenario DSL: each trial appends its fault plan and checkpoint
// schedule as spec lines and hands the text to ScenarioRunner, which
// replays the exact construction the hand-rolled fixture used to do
// (pinned per-controller seeds, full-mesh discovery, conditional fault
// installation). run_to_checkpoint() slices the schedule so the gtest
// assertions interleave between phases.
//
// The companion lossless check pins that the fault layer is pay-for-play:
// an explicitly installed FaultPlan{} draws no randomness and produces
// byte-for-byte the ChannelStats of a channel that never heard of faults.
//
// The driver accepts two telemetry flags in addition to the gtest ones
// (defining our own main keeps gtest_main's out of the link):
//   --trace FILE    write a Chrome trace_event JSON of every trial's
//                   control-plane activity (peering/re-key spans,
//                   invocation windows, delivery failures)
//   --metrics FILE  write a metrics JSON snapshot; each ChaosWorld folds
//                   its channel/fault/reliability counters into the global
//                   registry at teardown
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

// Set from main before RUN_ALL_TESTS; the tracer outlives every world.
discs::telemetry::SimTracer g_tracer;
bool g_trace_enabled = false;

}  // namespace

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }

/// Root of the per-trial seed derivation. CI sweeps a small matrix of
/// roots via DISCS_CHAOS_ROOT_SEED; every root in the matrix is pinned
/// (each run is still fully deterministic, never sampled).
std::uint64_t chaos_root_seed() {
  if (const char* env = std::getenv("DISCS_CHAOS_ROOT_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xc4a05;
}

/// The one scenario template every chaos world grows from: three DASes
/// (AS 1..3) plus a legacy AS 4 on a 10 ms channel, controller seeds
/// pinned to the historical as*1000+7 values. Trials append fault lines
/// and an `at ...` schedule before parsing.
constexpr char kChaosTemplate[] = R"(scenario chaos
world control
topology rpki
channel.latency 10ms
drain 0s
rpki 10.0.0.0/8 1
rpki 20.0.0.0/8 2
rpki 30.0.0.0/8 3
rpki 40.0.0.0/8 4
controller.peering_delay 2s
deploy 1 seed=1007
deploy 2 seed=2007
deploy 3 seed=3007
)";

/// A chaos world assembled by ScenarioRunner from template + extra spec
/// lines. Construction throws (failing the test) on a malformed spec.
struct ChaosWorld {
  explicit ChaosWorld(const std::string& spec_text) {
    auto parsed = scenario::parse_scenario(spec_text);
    if (!parsed.ok()) {
      throw std::runtime_error("chaos spec: " + parsed.error().to_string());
    }
    runner.emplace(std::move(*parsed));
    runner->build();
    if (g_trace_enabled) {
      // set_tracer names each controller's track itself.
      for (Controller* c : runner->controllers()) c->set_tracer(&g_tracer);
    }
  }

  /// Folds this world's channel, fault, and reliability counters into the
  /// global registry. Worlds are per-trial and die with their controllers,
  /// so the counters are accumulated by value at teardown instead of
  /// leaving pull-mode collectors behind over freed objects.
  ~ChaosWorld() {
    auto& reg = telemetry::MetricsRegistry::global();
    reg.counter("discs_chaos_worlds_total").add();
    const FaultStats& f = runner->net().fault_stats();
    reg.counter("discs_chaos_faults_total", "", {{"fault", "drop"}})
        .add(f.dropped);
    reg.counter("discs_chaos_faults_total", "", {{"fault", "duplicate"}})
        .add(f.duplicated);
    reg.counter("discs_chaos_faults_total", "", {{"fault", "partition"}})
        .add(f.partition_drops);
    const ChannelStats& ch = runner->net().stats();
    reg.counter("discs_chaos_channel_messages_total").add(ch.messages);
    reg.counter("discs_chaos_channel_bytes_total").add(ch.bytes);
    reg.counter("discs_chaos_channel_handshakes_total").add(ch.handshakes);
    ReliabilityStats rs;
    for (const Controller* c : runner->controllers()) {
      const ReliabilityStats& s = c->link().stats();
      rs.reliable_sends += s.reliable_sends;
      rs.retransmits += s.retransmits;
      rs.delivery_failures += s.delivery_failures;
      rs.duplicates_suppressed += s.duplicates_suppressed;
    }
    reg.counter("discs_chaos_reliable_sends_total").add(rs.reliable_sends);
    reg.counter("discs_chaos_retransmits_total").add(rs.retransmits);
    reg.counter("discs_chaos_delivery_failures_total")
        .add(rs.delivery_failures);
    reg.counter("discs_chaos_duplicates_suppressed_total")
        .add(rs.duplicates_suppressed);
  }

  bool run_to(const std::string& checkpoint) {
    return runner->run_to_checkpoint(checkpoint);
  }

  Controller& as(AsNumber n) { return *runner->controller(n); }
  EventLoop& loop() { return runner->loop(); }
  ConConNetwork& net() { return runner->net(); }
  const std::vector<Controller*>& controllers() {
    return runner->controllers();
  }
  [[nodiscard]] std::size_t total_windows() const {
    return runner->total_windows();
  }

  std::optional<scenario::ScenarioRunner> runner;
};

/// Both key directions of a peered pair agree end to end: the stamping key
/// each side holds toward the other equals the verification key the other
/// holds for it, and no grace key lingers.
void expect_pair_key_consistent(Controller& a, Controller& b) {
  ASSERT_TRUE(a.is_peer(b.as_number()))
      << a.as_number() << " does not peer " << b.as_number();
  ASSERT_TRUE(b.is_peer(a.as_number()));
  const auto* stamp = a.tables().key_s.find(b.as_number());
  const auto* verify = b.tables().key_v.find(a.as_number());
  ASSERT_NE(stamp, nullptr);
  ASSERT_NE(verify, nullptr);
  EXPECT_EQ(stamp->active, verify->active)
      << "key_{" << a.as_number() << "," << b.as_number() << "} diverged";
  EXPECT_FALSE(verify->previous.has_value())
      << "grace key never dropped for key_{" << a.as_number() << ","
      << b.as_number() << "}";
}

/// One full control-plane life cycle under the given per-trial fault seed:
/// discovery + peering, a re-key round that straddles a partition between
/// AS 1 and AS 2, and an invocation whose windows must deploy and then
/// expire without leaving orphans.
void run_chaos_trial(std::uint64_t fault_seed) {
  std::ostringstream text;
  text << kChaosTemplate
       // 30% loss per copy means a retry round trip fails with p ~ 0.51;
       // twelve transmissions push a delivery failure below ~3e-4 per
       // message, and the fixed seeds below are verified to converge with
       // zero failures.
       << "reliability.max_retries 12\n"
          "fault.drop 0.3\n"
          "fault.duplicate 0.1\n"
          "fault.reorder 50ms\n"
          "fault.jitter 20ms\n"
          "fault.partition 1 2 70s 73s\n"
       << "fault.seed " << fault_seed << "\n"
       << "at 60s checkpoint peered\n"
          "at 70s rekey @0\n"
          "at 140s checkpoint rekeyed\n";
  ChaosWorld world(text.str());

  // Phase 1: peering + initial keys converge despite the chaos.
  ASSERT_TRUE(world.run_to("peered"));
  for (auto* a : world.controllers()) {
    for (auto* b : world.controllers()) {
      if (a != b) expect_pair_key_consistent(*a, *b);
    }
  }

  // Phase 2: AS 1 re-keys every peer at t=70s — inside the 70s..73s
  // partition toward AS 2, so that pair's KeyInstall/acks must survive on
  // retransmits alone until the partition heals.
  ASSERT_TRUE(world.run_to("rekeyed"));
  EXPECT_GE(world.as(1).stats().rekeys_completed, 2u);
  for (auto* a : world.controllers()) {
    for (auto* b : world.controllers()) {
      if (a != b) expect_pair_key_consistent(*a, *b);
    }
  }

  // Phase 3: an invocation with a short window. After the retransmit tail
  // plus the window plus the expiry sweep, every function table must be
  // empty again (deployed-then-expired, never orphaned) and the peers'
  // epochs must have advanced (the installs really applied).
  const TableEpoch epoch2 = world.as(2).tables().applied_epoch();
  const TableEpoch epoch3 = world.as(3).tables().applied_epoch();
  EXPECT_EQ(world.as(1).invoke_ddos_defense(pfx("10.1.0.0/16"),
                                            /*spoofed_source=*/false,
                                            20 * kSecond),
            2u);
  world.loop().run_until(world.loop().now() + 90 * kSecond);
  EXPECT_GE(world.as(2).stats().invocations_received, 1u);
  EXPECT_GE(world.as(3).stats().invocations_received, 1u);
  EXPECT_GT(world.as(2).tables().applied_epoch(), epoch2);
  EXPECT_GT(world.as(3).tables().applied_epoch(), epoch3);
  EXPECT_EQ(world.total_windows(), 0u) << "orphaned function windows";

  // Reliability invariants: the chaos really bit (faults injected, repairs
  // happened), retransmission stayed bounded by the cap, and nothing was
  // abandoned.
  const auto max_retries =
      world.runner->spec().reliability.max_retries;
  EXPECT_GT(world.net().fault_stats().dropped, 0u);
  EXPECT_GT(world.net().fault_stats().duplicated, 0u);
  for (auto* c : world.controllers()) {
    const ReliabilityStats& rs = c->link().stats();
    EXPECT_EQ(rs.delivery_failures, 0u)
        << "AS " << c->as_number() << " abandoned a message";
    EXPECT_LE(rs.retransmits,
              rs.reliable_sends * static_cast<std::uint64_t>(max_retries));
    EXPECT_EQ(c->link().pending_count(), 0u)
        << "AS " << c->as_number() << " still has unsettled sends";
  }
  const ReliabilityStats& rs1 = world.as(1).link().stats();
  EXPECT_GT(rs1.retransmits + rs1.duplicates_suppressed, 0u)
      << "chaos plan produced no observable repair work";
}

TEST(ChaosTest, ConvergesUnderLossDuplicationAndReordering) {
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    run_chaos_trial(derive_seed(chaos_root_seed(), trial));
  }
}

TEST(ChaosTest, PartitionOnlyPlanHealsByRetransmission) {
  // No random faults at all — just a hard 5 s outage between AS 1 and AS 2
  // right as peering starts. The pair must still converge once it heals.
  std::ostringstream text;
  text << kChaosTemplate
       << "reliability.max_retries 12\n"
          "fault.partition 1 2 0s 5s\n"
          "at 60s checkpoint converged\n";
  ChaosWorld world(text.str());
  ASSERT_TRUE(world.run_to("converged"));
  expect_pair_key_consistent(world.as(1), world.as(2));
  expect_pair_key_consistent(world.as(2), world.as(1));
  EXPECT_GT(world.net().fault_stats().partition_drops, 0u);
  for (auto* c : world.controllers()) {
    EXPECT_EQ(c->link().stats().delivery_failures, 0u);
  }
}

/// Runs the reference scenario (peer, re-key, invoke, drain) and returns
/// the channel's cost accounting.
ChannelStats run_reference_scenario(bool install_lossless_plan,
                                    FaultStats* fault_stats) {
  std::ostringstream text;
  text << kChaosTemplate
       << "at 30s rekey @0\n"
          "at 40s invoke @0 10.1.0.0/16 direct 5s\n"
          "at 60s checkpoint end\n";
  ChaosWorld world(text.str());
  if (install_lossless_plan) world.net().set_fault_plan(FaultPlan{});
  EXPECT_TRUE(world.run_to("end"));
  if (fault_stats != nullptr) *fault_stats = world.net().fault_stats();
  return world.net().stats();
}

TEST(ChaosTest, LosslessFaultPlanReproducesChannelStatsExactly) {
  FaultStats faults;
  const ChannelStats baseline = run_reference_scenario(false, nullptr);
  const ChannelStats with_plan = run_reference_scenario(true, &faults);

  EXPECT_EQ(baseline.messages, with_plan.messages);
  EXPECT_EQ(baseline.bytes, with_plan.bytes);
  EXPECT_EQ(baseline.handshakes, with_plan.handshakes);
  EXPECT_EQ(baseline.session_resumptions, with_plan.session_resumptions);
  EXPECT_EQ(baseline.peak_concurrent_sessions, with_plan.peak_concurrent_sessions);
  EXPECT_EQ(baseline.sessions_expired, with_plan.sessions_expired);
  EXPECT_TRUE(baseline == with_plan);  // the defaulted operator== agrees
  EXPECT_TRUE(faults == FaultStats{});  // and the fault layer never fired
}

}  // namespace
}  // namespace discs

/// gtest_main replacement: strips --trace/--metrics before InitGoogleTest,
/// runs the suite, then persists the telemetry artifacts. CI validates both
/// files as JSON, so a write failure must fail the run even when every
/// test passed.
int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::vector<char*> gtest_args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      gtest_args.push_back(argv[i]);
    }
  }
  int gtest_argc = static_cast<int>(gtest_args.size());
  ::testing::InitGoogleTest(&gtest_argc, gtest_args.data());

  if (!trace_path.empty()) {
    g_trace_enabled = true;
    g_tracer.set_process_name("chaos_test");
  }
  const int rc = RUN_ALL_TESTS();

  bool io_ok = true;
  if (!trace_path.empty() && !g_tracer.write(trace_path)) {
    std::fprintf(stderr, "chaos_test: cannot write trace to %s\n",
                 trace_path.c_str());
    io_ok = false;
  }
  if (!metrics_path.empty() &&
      !discs::telemetry::write_metrics_json(
          discs::telemetry::MetricsRegistry::global(), metrics_path)) {
    std::fprintf(stderr, "chaos_test: cannot write metrics to %s\n",
                 metrics_path.c_str());
    io_ok = false;
  }
  return io_ok ? rc : (rc != 0 ? rc : 1);
}

// ReliableLink receive-side dedup under adversarial sequence gaps: the
// per-peer `ahead` set must stay bounded by dedup_window no matter what
// order (or with what holes) sequence numbers arrive, and evicting a gap
// must never re-admit an already-seen sequence — an evicted seq falls
// below the floor and stays suppressed as a duplicate forever.
#include "control/reliable.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "simkit/event_loop.hpp"
#include "transport/transport.hpp"

namespace discs {
namespace {

/// Transport test double: records what the link sends, delivers nothing.
struct NullTransport final : Transport {
  std::vector<Envelope> sent;
  void attach(AsNumber, Handler) override {}
  void detach(AsNumber) override {}
  void send(Envelope envelope) override { sent.push_back(std::move(envelope)); }
};

/// A dedup-neutral message: PeeringRequest deliberately resets the
/// receive state (restarted peers must get through) and DeliveryAck is
/// link-internal, so the dedup tests ride on RekeyComplete.
Envelope from_peer(AsNumber peer, std::uint64_t seq, bool ack = false) {
  Envelope envelope{peer, 1, RekeyComplete{seq}};
  envelope.seq = seq;
  envelope.ack_requested = ack;
  return envelope;
}

class ReliableRxTest : public ::testing::Test {
 protected:
  ReliableRxTest() : link_(loop_, net_, /*self=*/1, small_window()) {}

  static ReliabilityConfig small_window() {
    ReliabilityConfig config;
    config.dedup_window = 8;  // small enough to force evictions quickly
    return config;
  }

  EventLoop loop_;
  NullTransport net_;
  ReliableLink link_;
};

TEST_F(ReliableRxTest, ContiguousSequencesCompressIntoTheFloor) {
  for (std::uint64_t seq = 1; seq <= 100; ++seq) {
    EXPECT_EQ(link_.on_receive(from_peer(2, seq)), ReceiveAction::kFresh);
  }
  EXPECT_EQ(link_.rx_floor(2), 100u);
  EXPECT_EQ(link_.rx_ahead_size(2), 0u);  // nothing remembered out-of-order
}

TEST_F(ReliableRxTest, AheadSetStaysBoundedUnderAdversarialGaps) {
  // All-even sequences: every arrival leaves a hole, so nothing ever
  // compresses into the floor — the worst case for `ahead` growth.
  for (std::uint64_t seq = 2; seq <= 2000; seq += 2) {
    EXPECT_EQ(link_.on_receive(from_peer(2, seq)), ReceiveAction::kFresh);
    EXPECT_LE(link_.rx_ahead_size(2), small_window().dedup_window)
        << "at seq " << seq;
  }
  EXPECT_EQ(link_.rx_ahead_size(2), small_window().dedup_window);
  // Eviction raised the floor past the abandoned gaps.
  EXPECT_GE(link_.rx_floor(2), 2000u - 2 * small_window().dedup_window);
}

TEST_F(ReliableRxTest, RandomArrivalOrderNeverExceedsTheWindow) {
  Xoshiro256 rng(0x9e3779b9);
  for (int k = 0; k < 5000; ++k) {
    const std::uint64_t seq = 1 + rng.next() % 4096;
    link_.on_receive(from_peer(2, seq));
    ASSERT_LE(link_.rx_ahead_size(2), small_window().dedup_window);
  }
}

TEST_F(ReliableRxTest, EvictionDoesNotReadmitEvictedSequences) {
  // Fill well past the window so the earliest even seqs get evicted into
  // the floor, then replay them: every replay must classify as a duplicate
  // (suppressed and counted), never as fresh work for the controller.
  for (std::uint64_t seq = 2; seq <= 60; seq += 2) {
    link_.on_receive(from_peer(2, seq));
  }
  ASSERT_GT(link_.rx_floor(2), 2u) << "window never evicted";

  const std::uint64_t before = link_.stats().duplicates_suppressed;
  std::uint64_t replayed = 0;
  for (std::uint64_t seq = 2; seq <= 60; seq += 2) {
    EXPECT_EQ(link_.on_receive(from_peer(2, seq)), ReceiveAction::kDuplicate)
        << "seq " << seq << " re-admitted";
    ++replayed;
  }
  EXPECT_EQ(link_.stats().duplicates_suppressed, before + replayed);
  // And the never-sent odd seqs below the floor are unavoidably treated as
  // seen too — that is the documented cost of the bounded window.
  EXPECT_EQ(link_.on_receive(from_peer(2, 3)), ReceiveAction::kDuplicate);
}

TEST_F(ReliableRxTest, SuppressedDuplicatesStillGetTheirAckResent) {
  EXPECT_EQ(link_.on_receive(from_peer(2, 5, /*ack=*/true)),
            ReceiveAction::kFresh);
  ASSERT_EQ(net_.sent.size(), 1u);
  // The retransmitted copy is suppressed but re-acked (first ack lost).
  EXPECT_EQ(link_.on_receive(from_peer(2, 5, /*ack=*/true)),
            ReceiveAction::kDuplicate);
  ASSERT_EQ(net_.sent.size(), 2u);
  for (const Envelope& envelope : net_.sent) {
    const auto* ack = std::get_if<DeliveryAck>(&envelope.message);
    ASSERT_NE(ack, nullptr);
    EXPECT_EQ(ack->acked_seq, 5u);
  }
  EXPECT_EQ(link_.stats().acks_sent, 2u);
}

TEST_F(ReliableRxTest, SequenceZeroBypassesDedupEntirely) {
  // Raw senders (legacy tests, byzantine actors) use seq 0: always fresh,
  // never remembered, never acknowledged.
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(link_.on_receive(from_peer(2, 0)), ReceiveAction::kFresh);
  }
  EXPECT_EQ(link_.rx_ahead_size(2), 0u);
  EXPECT_EQ(link_.rx_floor(2), 0u);
  EXPECT_TRUE(net_.sent.empty());
}

TEST_F(ReliableRxTest, PeeringRequestResetsTheDedupState) {
  // A restarted peer begins sequencing from 1 again; its fresh
  // PeeringRequest must not be swallowed as an ancient duplicate.
  for (std::uint64_t seq = 1; seq <= 50; ++seq) {
    link_.on_receive(from_peer(2, seq));
  }
  ASSERT_EQ(link_.rx_floor(2), 50u);

  Envelope restart{2, 1, PeeringRequest{}};
  restart.seq = 1;
  EXPECT_EQ(link_.on_receive(restart), ReceiveAction::kFresh);
  EXPECT_EQ(link_.rx_floor(2), 1u);  // state restarted with the peer
}

TEST_F(ReliableRxTest, StateIsPerPeer) {
  link_.on_receive(from_peer(2, 7));
  link_.on_receive(from_peer(3, 9));
  EXPECT_EQ(link_.rx_ahead_size(2), 1u);
  EXPECT_EQ(link_.rx_ahead_size(3), 1u);
  EXPECT_EQ(link_.rx_ahead_size(4), 0u);  // never heard from
  EXPECT_EQ(link_.rx_floor(4), 0u);
}

}  // namespace
}  // namespace discs

// Attack-detector tests: the sliding-window rate monitor and the automatic
// invocation loop it drives (§IV-E1 "when to invoke").
#include "control/detector.hpp"

#include <gtest/gtest.h>

#include "core/discs_system.hpp"

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }
Ipv4Address ip(const char* t) { return *Ipv4Address::parse(t); }

RateDetector::Config tight_config() {
  RateDetector::Config cfg;
  cfg.threshold_packets = 10;
  cfg.window = kSecond;
  cfg.holddown = kMinute;
  return cfg;
}

TEST(RateDetectorTest, FiresAtThresholdWithinWindow) {
  RateDetector detector({pfx("10.1.0.0/16")}, tight_config());
  std::optional<Prefix4> fired;
  for (int k = 0; k < 10; ++k) {
    fired = detector.observe(ip("10.1.2.3"), kSecond + k * kMillisecond);
  }
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, pfx("10.1.0.0/16"));
}

TEST(RateDetectorTest, SlowTrafficNeverFires) {
  RateDetector detector({pfx("10.1.0.0/16")}, tight_config());
  for (int k = 0; k < 100; ++k) {
    // One packet every 200 ms: max 5 in any 1 s window.
    EXPECT_FALSE(
        detector.observe(ip("10.1.2.3"), k * 200 * kMillisecond).has_value());
  }
}

TEST(RateDetectorTest, UnmonitoredDestinationsIgnored) {
  RateDetector detector({pfx("10.1.0.0/16")}, tight_config());
  for (int k = 0; k < 50; ++k) {
    EXPECT_FALSE(detector.observe(ip("10.2.0.1"), kSecond + k).has_value());
  }
}

TEST(RateDetectorTest, HolddownSuppressesRefire) {
  RateDetector detector({pfx("10.1.0.0/16")}, tight_config());
  SimTime t = kSecond;
  int fires = 0;
  for (int k = 0; k < 200; ++k) {
    t += kMillisecond;
    fires += detector.observe(ip("10.1.0.1"), t).has_value();
  }
  EXPECT_EQ(fires, 1);  // holddown (1 min) blankets the burst

  // After the holddown a sustained attack re-fires.
  t += 2 * kMinute;
  for (int k = 0; k < 200; ++k) {
    t += kMillisecond;
    fires += detector.observe(ip("10.1.0.1"), t).has_value();
  }
  EXPECT_EQ(fires, 2);
}

TEST(RateDetectorTest, HolddownDoesNotAccumulateSamples) {
  // Window much longer than the holddown, so any samples recorded *during*
  // the holddown would still be in-window when it ends. A single packet
  // right after the quiet period must not re-fire off that stale backlog —
  // observe() has to drop samples while held down, not just mute the
  // trigger.
  RateDetector::Config cfg;
  cfg.threshold_packets = 10;
  cfg.window = 2 * kMinute;
  cfg.holddown = kMinute;
  RateDetector detector({pfx("10.1.0.0/16")}, cfg);

  SimTime t = kSecond;
  int fires = 0;
  for (int k = 0; k < 10; ++k) {
    fires += detector.observe(ip("10.1.0.1"), t += kMillisecond).has_value();
  }
  ASSERT_EQ(fires, 1);
  const SimTime quiet_until = t + kMinute;

  // Heavy flood throughout the holddown: all suppressed, none recorded.
  while (t < quiet_until - kSecond) {
    EXPECT_FALSE(detector.observe(ip("10.1.0.1"), t += 100 * kMillisecond)
                     .has_value());
  }

  // One packet after the holddown: far below threshold on its own, and the
  // flood above must not count toward it.
  EXPECT_FALSE(
      detector.observe(ip("10.1.0.1"), quiet_until + kSecond).has_value());

  // The detector is still alive: a genuine fresh burst re-fires.
  t = quiet_until + 2 * kSecond;
  for (int k = 0; k < 9; ++k) {
    fires += detector.observe(ip("10.1.0.1"), t += kMillisecond).has_value();
  }
  EXPECT_EQ(fires, 2);  // 1 prior sample + 9 fresh = threshold
}

TEST(RateDetectorTest, PerPrefixIsolation) {
  RateDetector detector({pfx("10.1.0.0/16"), pfx("10.2.0.0/16")},
                        tight_config());
  SimTime t = kSecond;
  // Drive only the first prefix over threshold.
  std::optional<Prefix4> fired;
  for (int k = 0; k < 10; ++k) fired = detector.observe(ip("10.1.0.1"), t += 1);
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, pfx("10.1.0.0/16"));
  EXPECT_EQ(detector.current_rate(ip("10.2.0.1"), t), 0u);
}

TEST(AutoDefenseTest, FloodTriggersAutomaticInvocation) {
  DiscsSystem::Config cfg;
  cfg.internet.num_ases = 32;
  cfg.internet.num_prefixes = 320;
  cfg.internet.seed = 99;
  cfg.seed = 5;
  // Short verification tolerance so the post-invocation packets in this
  // compressed timeline are judged rather than erase-only passed.
  cfg.controller.tolerance = 50 * kMillisecond;
  DiscsSystem system(cfg);
  const auto order = system.dataset().ases_by_space_desc();
  auto& victim = system.deploy(order[0]);
  auto& helper = system.deploy(order[1]);
  system.settle();

  victim.enable_auto_defense(/*threshold_packets=*/50, /*window=*/kSecond);
  EXPECT_TRUE(victim.auto_defense_enabled());

  // A legacy-AS flood hammers one victim address. The first ~50 packets
  // slip through; then the detector fires, the invocation reaches the
  // helper, and everything afterwards is filtered.
  const auto target = system.sampler().sample_address(order[0]);
  std::size_t delivered = 0;
  for (int k = 0; k < 200; ++k) {
    auto packet = Ipv4Packet::make(system.sampler().sample_address(order[1]),
                                   target, IpProto::kUdp,
                                   {std::uint8_t(k), std::uint8_t(k >> 8)});
    // Attack from the legacy world spoofing the helper's space.
    const auto result = system.send_packet(order[2], packet);
    delivered += result.outcome == DeliveryOutcome::kDelivered;
    system.settle(10 * kMillisecond);  // let control messages flow
  }
  // At least the rate detector fired (the alarm-sample detector may also
  // trigger on the post-invocation drop stream and add to the counter).
  EXPECT_GE(victim.stats().detector_triggers, 1u);
  EXPECT_GT(delivered, 40u);   // pre-detection slip-through
  EXPECT_LT(delivered, 120u);  // post-invocation filtering bites
  EXPECT_GT(helper.stats().invocations_received, 0u);
}

}  // namespace
}  // namespace discs

// Control-plane integration tests: controllers discover each other, peer,
// negotiate keys, and drive the data plane end to end.
#include "control/controller.hpp"

#include <gtest/gtest.h>

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }
Ipv4Address ip(const char* t) { return *Ipv4Address::parse(t); }

// Three DASes (AS 1: 10/8, AS 2: 20/8, AS 3: 30/8) plus a legacy AS 4
// (40/8) that never runs DISCS.
class ControlPlaneTest : public ::testing::Test {
 protected:
  ControlPlaneTest()
      : rpki_({{pfx("10.0.0.0/8"), {1}},
               {pfx("20.0.0.0/8"), {2}},
               {pfx("30.0.0.0/8"), {3}},
               {pfx("40.0.0.0/8"), {4}}}),
        net_(loop_, 10 * kMillisecond) {}

  std::unique_ptr<Controller> make_controller(AsNumber as,
                                              ControllerConfig extra = {}) {
    ControllerConfig cfg = extra;
    cfg.as = as;
    cfg.seed = as * 1000 + 7;
    return std::make_unique<Controller>(cfg, loop_, net_, rpki_);
  }

  /// Floods every controller's Ad to every other controller (the BGP layer
  /// is exercised separately; core wires the real thing).
  void flood_ads(std::vector<Controller*> controllers) {
    for (Controller* a : controllers) {
      for (Controller* b : controllers) {
        if (a != b) b->discover(a->advertisement());
      }
    }
    // Bounded drain (not run()): periodic re-key timers reschedule forever.
    // 30 s comfortably covers peering jitter (<= 5 s) + handshakes.
    loop_.run_until(loop_.now() + 30 * kSecond);
  }

  InternetDataset rpki_;
  EventLoop loop_;
  ConConNetwork net_;
};

TEST_F(ControlPlaneTest, DiscoveryLeadsToPeeringAndKeys) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});

  EXPECT_TRUE(c1->is_peer(2));
  EXPECT_TRUE(c2->is_peer(1));
  // Both directions have keys: c1 stamps toward 2 with the key 2 verifies.
  ASSERT_TRUE(c1->tables().key_s.has_key(2));
  ASSERT_TRUE(c2->tables().key_v.has_key(1));
  EXPECT_EQ(c1->tables().key_s.find(2)->active, c2->tables().key_v.find(1)->active);
  EXPECT_EQ(c2->tables().key_s.find(1)->active, c1->tables().key_v.find(2)->active);
}

TEST_F(ControlPlaneTest, BlacklistedAsIsRejected) {
  ControllerConfig cfg;
  cfg.blacklist = {2};
  auto c1 = make_controller(1, cfg);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});

  EXPECT_FALSE(c1->is_peer(2));
  EXPECT_FALSE(c2->is_peer(1));
  EXPECT_EQ(c1->peer_state(2), PeerState::kRejected);
}

TEST_F(ControlPlaneTest, ThreePartyFullMesh) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  auto c3 = make_controller(3);
  flood_ads({c1.get(), c2.get(), c3.get()});
  EXPECT_EQ(c1->peer_count(), 2u);
  EXPECT_EQ(c2->peer_count(), 2u);
  EXPECT_EQ(c3->peer_count(), 2u);
}

TEST_F(ControlPlaneTest, InvocationInstallsBothSides) {
  auto c1 = make_controller(1);  // victim
  auto c2 = make_controller(2);  // peer
  flood_ads({c1.get(), c2.get()});

  EXPECT_EQ(c1->invoke_ddos_defense(pfx("10.1.0.0/16"), /*spoofed_source=*/false),
            1u);
  // Bounded drain: the con-rou channel schedules the invocation's expiry
  // sweep at window end, so run() would fast-forward past the window.
  loop_.run_until(loop_.now() + kSecond);

  const SimTime now = loop_.now() + kMinute;
  // Peer side: DP + CDP-stamp on Out-Dst.
  const auto peer_match = c2->tables().out_dst.lookup(ip("10.1.2.3"), now);
  EXPECT_TRUE(has_function(peer_match.functions, DefenseFunction::kDp));
  EXPECT_TRUE(has_function(peer_match.functions, DefenseFunction::kCdpStamp));
  // Victim side: CDP-verify on In-Dst.
  const auto victim_match = c1->tables().in_dst.lookup(ip("10.1.2.3"), now);
  EXPECT_TRUE(has_function(victim_match.functions, DefenseFunction::kCdpVerify));
}

TEST_F(ControlPlaneTest, EndToEndPacketFiltering) {
  auto c1 = make_controller(1);  // victim
  auto c2 = make_controller(2);  // collaborating peer
  flood_ads({c1.get(), c2.get()});
  c1->invoke_ddos_defense(pfx("10.1.0.0/16"), false);
  loop_.run_until(loop_.now() + kSecond);  // bounded: expiry sweep is queued
  const SimTime now = loop_.now() + kMinute;

  // Genuine packet from AS 2 to the victim: stamped at 2, verified at 1.
  auto good = Ipv4Packet::make(ip("20.0.0.5"), ip("10.1.0.1"), IpProto::kUdp,
                               {1, 2, 3});
  EXPECT_EQ(c2->router().process_outbound(good, now), Verdict::kPass);
  EXPECT_EQ(c1->router().process_inbound(good, now), Verdict::kPass);
  EXPECT_EQ(c1->router().stats().in_verified, 1u);

  // Agent inside AS 2 spoofing AS 4: dropped at 2's egress (DP).
  auto spoof = Ipv4Packet::make(ip("40.0.0.1"), ip("10.1.0.1"), IpProto::kUdp, {});
  EXPECT_EQ(c2->router().process_outbound(spoof, now), Verdict::kDropFiltered);

  // Attack from legacy AS 4 spoofing AS 2's space: reaches the victim
  // unstamped and is dropped by CDP-verify.
  auto forged = Ipv4Packet::make(ip("20.0.0.5"), ip("10.1.0.1"), IpProto::kUdp, {});
  EXPECT_EQ(c1->router().process_inbound(forged, now), Verdict::kDropSpoofed);
}

TEST_F(ControlPlaneTest, SpoofedSourceDefenseUsesSpCsp) {
  auto c1 = make_controller(1);  // victim of s-DDoS
  auto c2 = make_controller(2);  // peer (potential reflector host)
  flood_ads({c1.get(), c2.get()});
  c1->invoke_ddos_defense(pfx("10.1.0.0/16"), /*spoofed_source=*/true);
  loop_.run_until(loop_.now() + kSecond);  // bounded: expiry sweep is queued
  const SimTime now = loop_.now() + kMinute;

  // Victim stamps its genuine outbound toward the peer (CSP-stamp).
  auto genuine = Ipv4Packet::make(ip("10.1.0.1"), ip("20.0.0.5"), IpProto::kUdp,
                                  {1, 2});
  EXPECT_EQ(c1->router().process_outbound(genuine, now), Verdict::kPass);
  EXPECT_EQ(c1->router().stats().out_stamped, 1u);
  EXPECT_EQ(c2->router().process_inbound(genuine, now), Verdict::kPass);
  EXPECT_EQ(c2->router().stats().in_verified, 1u);

  // Reflection-attack request forged by an agent inside AS 2, claiming the
  // victim's source: dropped at 2's egress (SP).
  auto forged = Ipv4Packet::make(ip("10.1.0.1"), ip("20.0.0.5"), IpProto::kUdp, {});
  EXPECT_EQ(c2->router().process_outbound(forged, now), Verdict::kDropFiltered);

  // Forged request arriving at the peer from the legacy world without a
  // mark: dropped by CSP-verify at 2's ingress.
  auto inbound_forged =
      Ipv4Packet::make(ip("10.1.0.1"), ip("20.0.0.5"), IpProto::kUdp, {9});
  EXPECT_EQ(c2->router().process_inbound(inbound_forged, now),
            Verdict::kDropSpoofed);
}

TEST_F(ControlPlaneTest, OwnershipCheckRejectsForeignPrefixes) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});

  // AS 1 tries to get AS 3's prefix filtered — must be refused.
  c1->invoke({{pfx("30.1.0.0/16"), kInvokeAll, kHour}});
  loop_.run();
  EXPECT_EQ(c2->stats().invocations_rejected, 1u);
  const auto match =
      c2->tables().out_dst.lookup(ip("30.1.0.1"), loop_.now() + kMinute);
  EXPECT_EQ(match.functions, 0);
}

TEST_F(ControlPlaneTest, InvocationExpiresAfterDuration) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});
  c1->invoke_ddos_defense(pfx("10.1.0.0/16"), false, kHour);
  loop_.run_until(loop_.now() + kSecond);  // bounded: expiry sweep is queued

  const SimTime active = loop_.now() + kMinute;
  const SimTime expired = loop_.now() + 2 * kHour;
  EXPECT_NE(c2->tables().out_dst.lookup(ip("10.1.0.1"), active).functions, 0);
  EXPECT_EQ(c2->tables().out_dst.lookup(ip("10.1.0.1"), expired).functions, 0);

  // Expiry is physical, not just a lazy time check: the channel scheduled a
  // remove-transaction at window end + grace, so draining the loop leaves
  // zero windows installed on either side.
  loop_.run();
  EXPECT_EQ(c2->tables().out_dst.window_count(), 0u);
  EXPECT_EQ(c1->tables().in_dst.window_count(), 0u);
}

TEST_F(ControlPlaneTest, ReinvocationExtendsDuration) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});
  c1->invoke_ddos_defense(pfx("10.1.0.0/16"), false, kHour);
  loop_.run_until(loop_.now() + kSecond);
  // Attack persists: re-invoke with a longer duration (§IV-E1).
  c1->invoke_ddos_defense(pfx("10.1.0.0/16"), false, 3 * kHour);
  loop_.run_until(loop_.now() + kSecond);
  const SimTime later = loop_.now() + 2 * kHour;
  EXPECT_NE(c2->tables().out_dst.lookup(ip("10.1.0.1"), later).functions, 0);

  // The first invocation's sweep fires around hour 1, mid-way through the
  // extended window — it must be a no-op (the merged window's end moved).
  loop_.run_until(loop_.now() + kHour + kMinute);
  EXPECT_NE(
      c2->tables().out_dst.lookup(ip("10.1.0.1"), loop_.now()).functions, 0);
}

TEST_F(ControlPlaneTest, RekeyKeepsTrafficFlowing) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});
  c1->invoke_ddos_defense(pfx("10.1.0.0/16"), false);
  loop_.run_until(loop_.now() + kSecond);  // bounded: expiry sweep is queued
  const SimTime t1 = loop_.now() + kMinute;

  // Packet stamped under the original key...
  auto in_flight = Ipv4Packet::make(ip("20.0.0.5"), ip("10.1.0.1"),
                                    IpProto::kUdp, {1});
  EXPECT_EQ(c2->router().process_outbound(in_flight, t1), Verdict::kPass);

  // ...then AS 2 re-keys (two-phase). Advance only far enough for the
  // KeyInstall/Ack exchange — the grace window (2 s) must still be open.
  c2->rekey_all_peers();
  loop_.run_until(loop_.now() + 500 * kMillisecond);
  EXPECT_GE(c2->stats().rekeys_completed, 1u);

  // The in-flight packet still verifies via the grace key window. (Judged
  // at t1, outside the invocation's head tolerance interval, so this truly
  // exercises the grace key.)
  EXPECT_EQ(c1->router().process_inbound(in_flight, t1), Verdict::kPass);
  EXPECT_GE(c1->router().stats().in_verified, 1u);

  // Once the grace window closes the old key is purged from the table.
  loop_.run_until(loop_.now() + 5 * kSecond);
  EXPECT_FALSE(c1->tables().key_v.find(2)->previous.has_value());

  // New packets use the new key and verify too.
  auto fresh = Ipv4Packet::make(ip("20.0.0.5"), ip("10.1.0.1"), IpProto::kUdp,
                                {2});
  EXPECT_EQ(c2->router().process_outbound(fresh, loop_.now()), Verdict::kPass);
  EXPECT_EQ(c1->router().process_inbound(fresh, loop_.now()), Verdict::kPass);
}

TEST_F(ControlPlaneTest, PeriodicRekeyTimerFires) {
  ControllerConfig cfg;
  cfg.rekey_interval = kMinute;
  auto c1 = make_controller(1, cfg);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});
  const auto serial_before = c1->stats().keys_generated;
  // run_until (not run()): the re-key timer reschedules itself forever.
  loop_.run_until(loop_.now() + 3 * kMinute + 5 * kSecond);
  EXPECT_GE(c1->stats().keys_generated, serial_before + 3);
  EXPECT_GE(c1->stats().rekeys_completed, 3u);
}

TEST_F(ControlPlaneTest, AlarmModeDetectorTriggersDropMode) {
  ControllerConfig cfg;
  cfg.detect_threshold = 10;
  auto c1 = make_controller(1, cfg);  // victim, lacking a detector module
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});

  // Victim invokes in alarm mode: spoofing is identified + sampled, not
  // dropped yet.
  c1->invoke({{pfx("10.1.0.0/16"),
               invoke_mask(InvokableFunction::kDp) |
                   invoke_mask(InvokableFunction::kCdp),
               kHour}},
             /*alarm_mode=*/true);
  loop_.run_until(loop_.now() + kSecond);  // bounded: expiry sweep is queued
  EXPECT_TRUE(c1->router().alarm_mode());

  // A stream of forged packets (claiming peer AS 2) hits the victim, well
  // past the head tolerance interval so verification actually judges them.
  const SimTime t0 = loop_.now() + kMinute;
  for (int i = 0; i < 9; ++i) {
    auto forged = Ipv4Packet::make(ip("20.0.0.5"), ip("10.1.0.1"),
                                   IpProto::kUdp, {std::uint8_t(i)});
    EXPECT_EQ(c1->router().process_inbound(forged, t0 + i), Verdict::kPass);
  }
  EXPECT_TRUE(c1->router().alarm_mode());  // below threshold

  auto forged = Ipv4Packet::make(ip("20.0.0.5"), ip("10.1.0.1"), IpProto::kUdp,
                                 {99});
  EXPECT_EQ(c1->router().process_inbound(forged, t0 + 10), Verdict::kPass);
  // Threshold crossed: the controller leaves alarm mode (and asks peers to).
  EXPECT_FALSE(c1->router().alarm_mode());
  EXPECT_EQ(c1->stats().detector_triggers, 1u);

  auto next = Ipv4Packet::make(ip("20.0.0.5"), ip("10.1.0.1"), IpProto::kUdp,
                               {100});
  EXPECT_EQ(c1->router().process_inbound(next, t0 + 11), Verdict::kDropSpoofed);
}

TEST_F(ControlPlaneTest, LegacyAsGetsNoProtection) {
  // The paper's incentive property: an AS without DISCS cannot invoke
  // anything — there is simply no controller and no peer executing for it.
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});
  const SimTime now = loop_.now() + kMinute;
  // Traffic spoofing legacy AS 4's space toward AS 4 flows through AS 2
  // untouched: no function tables ever mention 40/8.
  auto spoof = Ipv4Packet::make(ip("40.0.0.1"), ip("40.0.0.2"), IpProto::kUdp, {});
  EXPECT_EQ(c2->router().process_outbound(spoof, now), Verdict::kPass);
}

TEST_F(ControlPlaneTest, ConRouLatencyDelaysTableInstallation) {
  ControllerConfig cfg;
  cfg.con_rou_latency = 200 * kMillisecond;
  auto c1 = make_controller(1, cfg);
  auto c2 = make_controller(2, cfg);
  flood_ads({c1.get(), c2.get()});

  const SimTime invoked_at = loop_.now();
  c1->invoke_ddos_defense(pfx("10.1.0.0/16"), false);
  // The victim-side entry is not on the routers yet.
  EXPECT_EQ(c1->tables().in_dst.lookup(ip("10.1.0.1"), invoked_at).functions, 0);

  loop_.run_until(invoked_at + kSecond);
  const SimTime now = loop_.now() + kMinute;
  EXPECT_TRUE(has_function(c1->tables().in_dst.lookup(ip("10.1.0.1"), now).functions,
                           DefenseFunction::kCdpVerify));
  EXPECT_TRUE(has_function(c2->tables().out_dst.lookup(ip("10.1.0.1"), now).functions,
                           DefenseFunction::kDp));

  // The peers' windows start at *their* install time, not the victim's
  // decision time: asynchronization exists, and the 2 s tolerance interval
  // comfortably covers the 200 ms skew — a genuine packet stamped by the
  // peer immediately after install verifies at the victim.
  auto p = Ipv4Packet::make(ip("20.0.0.5"), ip("10.1.0.1"), IpProto::kUdp, {1});
  EXPECT_EQ(c2->router().process_outbound(p, now), Verdict::kPass);
  EXPECT_EQ(c1->router().process_inbound(p, now), Verdict::kPass);
}

TEST_F(ControlPlaneTest, ControllerRequiresValidAs) {
  ControllerConfig cfg;
  cfg.as = kNoAs;
  EXPECT_THROW(Controller(cfg, loop_, net_, rpki_), std::invalid_argument);
}

TEST_F(ControlPlaneTest, SimultaneousPeeringRequestsConverge) {
  // Both sides discover each other at the same instant with zero jitter:
  // crossing PeeringRequests must still converge to a single peered state
  // with exactly one key per direction.
  ControllerConfig cfg;
  cfg.max_peering_delay = 0;
  auto c1 = make_controller(1, cfg);
  auto c2 = make_controller(2, cfg);
  c1->discover(c2->advertisement());
  c2->discover(c1->advertisement());
  loop_.run();

  EXPECT_TRUE(c1->is_peer(2));
  EXPECT_TRUE(c2->is_peer(1));
  EXPECT_EQ(c1->stats().keys_generated, 1u);
  EXPECT_EQ(c2->stats().keys_generated, 1u);
  EXPECT_EQ(c1->tables().key_s.find(2)->active, c2->tables().key_v.find(1)->active);
}

TEST_F(ControlPlaneTest, RediscoveryAfterPeeringIsIgnored) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});
  const auto keys_before = c1->stats().keys_generated;
  // The Ad re-floods (e.g. a BGP path change); nothing should restart.
  c1->discover(c2->advertisement());
  loop_.run();
  EXPECT_EQ(c1->stats().keys_generated, keys_before);
  EXPECT_TRUE(c1->is_peer(2));
}

TEST_F(ControlPlaneTest, DuplicatePeeringRequestDoesNotRenegotiateKeys) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});
  ASSERT_TRUE(c1->is_peer(2));
  const auto keys_before = c1->stats().keys_generated;
  const auto stamp_before = c1->tables().key_s.find(2)->active;

  // A duplicated / replayed PeeringRequest reaches the peered side twice
  // (e.g. the sender's retransmit raced its own ack). The handler must
  // re-accept idempotently — no fresh key negotiation, no serial churn.
  net_.send(2, 1, PeeringRequest{});
  net_.send(2, 1, PeeringRequest{});
  loop_.run();

  EXPECT_EQ(c1->stats().keys_generated, keys_before);
  EXPECT_EQ(c1->tables().key_s.find(2)->active, stamp_before);
  EXPECT_TRUE(c1->is_peer(2));
  EXPECT_TRUE(c2->is_peer(1));
  EXPECT_EQ(c1->tables().key_s.find(2)->active,
            c2->tables().key_v.find(1)->active);
  EXPECT_EQ(c1->link().pending_count(), 0u);
}

TEST_F(ControlPlaneTest, RekeySurvivesLostAcksAndKeepsGraceKeyUntilCommit) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});
  c1->invoke_ddos_defense(pfx("10.1.0.0/16"), false);
  loop_.run_until(loop_.now() + kSecond);

  // Partition opens just after the KeyInstall leaves c2, swallowing the
  // KeyInstallAck and every retransmission for three seconds.
  const SimTime t0 = loop_.now();
  FaultPlan plan;
  plan.partitions = {{1, 2, t0 + 5 * kMillisecond, t0 + 3 * kSecond}};
  net_.set_fault_plan(plan);
  c2->rekey_all_peers();

  // Well past the old fixed 2 s grace window, still inside the partition:
  // c2 never saw an ack so it has not committed and still stamps with the
  // old key — c1 must still hold the grace key to verify that traffic.
  // (A timer-based grace drop fails exactly here.)
  loop_.run_until(t0 + 2500 * kMillisecond);
  EXPECT_EQ(c2->stats().rekeys_completed, 0u);
  ASSERT_TRUE(c1->tables().key_v.find(2)->previous.has_value());
  auto old_stamped =
      Ipv4Packet::make(ip("20.0.0.5"), ip("10.1.0.1"), IpProto::kUdp, {1});
  EXPECT_EQ(c2->router().process_outbound(old_stamped, loop_.now()),
            Verdict::kPass);
  EXPECT_EQ(c1->router().process_inbound(old_stamped, loop_.now()),
            Verdict::kPass);

  // The partition heals, a retransmission completes the handshake, and the
  // RekeyComplete-gated grace drop finally fires.
  loop_.run_until(t0 + 12 * kSecond);
  EXPECT_EQ(c2->stats().rekeys_completed, 1u);
  EXPECT_FALSE(c1->tables().key_v.find(2)->previous.has_value());
  EXPECT_GT(net_.fault_stats().partition_drops, 0u);
  EXPECT_GT(c1->link().stats().retransmits + c2->link().stats().retransmits,
            0u);
  EXPECT_EQ(c2->tables().key_s.find(1)->active,
            c1->tables().key_v.find(2)->active);

  auto fresh =
      Ipv4Packet::make(ip("20.0.0.5"), ip("10.1.0.1"), IpProto::kUdp, {2});
  EXPECT_EQ(c2->router().process_outbound(fresh, loop_.now()), Verdict::kPass);
  EXPECT_EQ(c1->router().process_inbound(fresh, loop_.now()), Verdict::kPass);
}

TEST_F(ControlPlaneTest, UnreachablePeerRollsBackToDiscovered) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  // AS 2 is partitioned away for the whole retry budget: the peering
  // request must exhaust its retransmissions, count a delivery failure,
  // and roll AS 2 back to kDiscovered instead of wedging in kRequested.
  FaultPlan plan;
  plan.partitions = {{1, 2, 0, kHour}};
  net_.set_fault_plan(plan);
  c1->discover(c2->advertisement());
  loop_.run_until(2 * kMinute);

  EXPECT_EQ(c1->link().stats().delivery_failures, 1u);
  EXPECT_EQ(c1->peer_state(2), PeerState::kDiscovered);
  EXPECT_EQ(c1->link().pending_count(), 0u);
}

TEST_F(ControlPlaneTest, DetachedControllerStopsReceiving) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});
  c2->shutdown();  // detaches from the channel
  const auto received_before = c2->stats().invocations_received;
  c1->invoke_ddos_defense(pfx("10.1.0.0/16"), false);
  loop_.run();
  EXPECT_EQ(c2->stats().invocations_received, received_before);
}

}  // namespace
}  // namespace discs

#include "control/secure_channel.hpp"

#include <gtest/gtest.h>

namespace discs {
namespace {

TEST(WireSizeTest, MatchesTheRealCodec) {
  EXPECT_EQ(wire_size(PeeringRequest{}), 16u);  // header only
  EXPECT_GT(wire_size(KeyInstall{}), wire_size(KeyInstallAck{}));
  InvocationRequest inv;
  inv.triples.resize(3);  // v4 triples: family+addr+len+functions+duration
  EXPECT_EQ(wire_size(inv) - wire_size(InvocationRequest{}), 3u * 15u);
  InvocationRequest inv6;
  inv6.triples.push_back({*Prefix6::parse("2400:1::/32"), 1, kHour});
  EXPECT_EQ(wire_size(inv6) - wire_size(InvocationRequest{}), 27u);
}

TEST(ConConNetworkTest, DeliversWithLatency) {
  EventLoop loop;
  ConConNetwork net(loop, 100 * kMillisecond);
  std::vector<Envelope> received;
  SimTime delivered_at = 0;
  net.attach(2, [&](const Envelope& e) {
    received.push_back(e);
    delivered_at = loop.now();
  });
  net.send(1, 2, PeeringRequest{});
  loop.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].from, 1u);
  EXPECT_EQ(received[0].to, 2u);
  // First contact pays the handshake latency on top of propagation.
  EXPECT_EQ(delivered_at, 100 * kMillisecond + 2 * kMillisecond);
}

TEST(ConConNetworkTest, UnattachedDestinationDropsSilently) {
  EventLoop loop;
  ConConNetwork net(loop);
  net.send(1, 99, PeeringRequest{});
  loop.run();  // no crash, message vanished
  EXPECT_EQ(net.stats().messages, 1u);
}

TEST(ConConNetworkTest, SessionCacheAvoidsRepeatedHandshakes) {
  EventLoop loop;
  ConConNetwork net(loop);
  net.attach(2, [](const Envelope&) {});
  for (int i = 0; i < 5; ++i) net.send(1, 2, PeeringRequest{});
  loop.run();
  EXPECT_EQ(net.stats().handshakes, 1u);
  EXPECT_EQ(net.stats().session_resumptions, 4u);
}

TEST(ConConNetworkTest, SessionExpiresAfterTtl) {
  EventLoop loop;
  ChannelCostModel cost;
  cost.session_ttl = 1 * kSecond;
  ConConNetwork net(loop, 10 * kMillisecond, cost);
  net.attach(2, [](const Envelope&) {});
  net.send(1, 2, PeeringRequest{});
  loop.run();
  loop.run_until(loop.now() + 2 * kSecond);
  net.send(1, 2, PeeringRequest{});
  loop.run();
  EXPECT_EQ(net.stats().handshakes, 2u);
}

TEST(ConConNetworkTest, SessionIsSharedBetweenDirections) {
  EventLoop loop;
  ConConNetwork net(loop);
  net.attach(1, [](const Envelope&) {});
  net.attach(2, [](const Envelope&) {});
  net.send(1, 2, PeeringRequest{});
  net.send(2, 1, PeeringAccept{});
  loop.run();
  EXPECT_EQ(net.stats().handshakes, 1u);
}

TEST(ConConNetworkTest, ByteAccountingIncludesOverheads) {
  EventLoop loop;
  ChannelCostModel cost;
  cost.record_overhead_bytes = 29;
  cost.handshake_bytes = 1500;
  ConConNetwork net(loop, 0, cost);
  net.attach(2, [](const Envelope&) {});
  net.send(1, 2, KeyInstall{});
  loop.run();
  EXPECT_EQ(net.stats().bytes, 1500u + wire_size(KeyInstall{}) + 29u);
}

TEST(ConConNetworkTest, TracksPeakConcurrentSessions) {
  EventLoop loop;
  ConConNetwork net(loop);
  for (AsNumber as = 2; as <= 6; ++as) net.attach(as, [](const Envelope&) {});
  for (AsNumber as = 2; as <= 6; ++as) net.send(1, as, PeeringRequest{});
  loop.run();
  EXPECT_EQ(net.stats().peak_concurrent_sessions, 5u);
  EXPECT_EQ(net.live_sessions(loop.now()), 5u);
}

}  // namespace
}  // namespace discs

#include "control/secure_channel.hpp"

#include <gtest/gtest.h>

namespace discs {
namespace {

TEST(WireSizeTest, MatchesTheRealCodec) {
  EXPECT_EQ(wire_size(PeeringRequest{}), 24u);  // header only
  EXPECT_GT(wire_size(KeyInstall{}), wire_size(KeyInstallAck{}));
  InvocationRequest inv;
  inv.triples.resize(3);  // v4 triples: family+addr+len+functions+duration
  EXPECT_EQ(wire_size(inv) - wire_size(InvocationRequest{}), 3u * 15u);
  InvocationRequest inv6;
  inv6.triples.push_back({*Prefix6::parse("2400:1::/32"), 1, kHour});
  EXPECT_EQ(wire_size(inv6) - wire_size(InvocationRequest{}), 27u);
}

TEST(ConConNetworkTest, DeliversWithLatency) {
  EventLoop loop;
  ConConNetwork net(loop, 100 * kMillisecond);
  std::vector<Envelope> received;
  SimTime delivered_at = 0;
  net.attach(2, [&](const Envelope& e) {
    received.push_back(e);
    delivered_at = loop.now();
  });
  net.send(1, 2, PeeringRequest{});
  loop.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].from, 1u);
  EXPECT_EQ(received[0].to, 2u);
  // First contact pays the handshake latency on top of propagation.
  EXPECT_EQ(delivered_at, 100 * kMillisecond + 2 * kMillisecond);
}

TEST(ConConNetworkTest, UnattachedDestinationDropsSilently) {
  EventLoop loop;
  ConConNetwork net(loop);
  net.send(1, 99, PeeringRequest{});
  loop.run();  // no crash, message vanished
  EXPECT_EQ(net.stats().messages, 1u);
}

TEST(ConConNetworkTest, SessionCacheAvoidsRepeatedHandshakes) {
  EventLoop loop;
  ConConNetwork net(loop);
  net.attach(2, [](const Envelope&) {});
  for (int i = 0; i < 5; ++i) net.send(1, 2, PeeringRequest{});
  loop.run();
  EXPECT_EQ(net.stats().handshakes, 1u);
  EXPECT_EQ(net.stats().session_resumptions, 4u);
}

TEST(ConConNetworkTest, SessionExpiresAfterTtl) {
  EventLoop loop;
  ChannelCostModel cost;
  cost.session_ttl = 1 * kSecond;
  ConConNetwork net(loop, 10 * kMillisecond, cost);
  net.attach(2, [](const Envelope&) {});
  net.send(1, 2, PeeringRequest{});
  loop.run();
  loop.run_until(loop.now() + 2 * kSecond);
  net.send(1, 2, PeeringRequest{});
  loop.run();
  EXPECT_EQ(net.stats().handshakes, 2u);
}

TEST(ConConNetworkTest, SessionIsSharedBetweenDirections) {
  EventLoop loop;
  ConConNetwork net(loop);
  net.attach(1, [](const Envelope&) {});
  net.attach(2, [](const Envelope&) {});
  net.send(1, 2, PeeringRequest{});
  net.send(2, 1, PeeringAccept{});
  loop.run();
  EXPECT_EQ(net.stats().handshakes, 1u);
}

TEST(ConConNetworkTest, ByteAccountingIncludesOverheads) {
  EventLoop loop;
  ChannelCostModel cost;
  cost.record_overhead_bytes = 29;
  cost.handshake_bytes = 1500;
  ConConNetwork net(loop, 0, cost);
  net.attach(2, [](const Envelope&) {});
  net.send(1, 2, KeyInstall{});
  loop.run();
  EXPECT_EQ(net.stats().bytes, 1500u + wire_size(KeyInstall{}) + 29u);
}

TEST(ConConNetworkTest, SessionCacheStaysBoundedOverTime) {
  EventLoop loop;
  ChannelCostModel cost;
  cost.session_ttl = kSecond;
  ConConNetwork net(loop, 0, cost);
  net.attach(1, [](const Envelope&) {});
  // A churn of short-lived pairs: each second a different peer talks to
  // AS 1, and dead sessions get swept instead of accumulating forever.
  for (AsNumber as = 2; as <= 101; ++as) {
    net.send(as, 1, PeeringRequest{});
    loop.run_until(loop.now() + kSecond);
  }
  loop.run();
  EXPECT_GT(net.stats().sessions_expired, 90u);
  EXPECT_LE(net.session_cache_size(), 10u);
  EXPECT_LE(net.live_sessions(loop.now()), net.session_cache_size());
}

TEST(ConConNetworkTest, CertainDropDeliversNothing) {
  EventLoop loop;
  ConConNetwork net(loop);
  std::size_t received = 0;
  net.attach(2, [&](const Envelope&) { ++received; });
  FaultPlan plan;
  plan.drop_probability = 1.0;
  net.set_fault_plan(plan);
  for (int k = 0; k < 20; ++k) net.send(1, 2, PeeringRequest{});
  loop.run();
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(net.fault_stats().dropped, 20u);
  EXPECT_EQ(net.stats().messages, 20u);  // cost accounting is send-side
}

TEST(ConConNetworkTest, CertainDuplicationDeliversTwoCopies) {
  EventLoop loop;
  ConConNetwork net(loop);
  std::size_t received = 0;
  net.attach(2, [&](const Envelope&) { ++received; });
  FaultPlan plan;
  plan.duplicate_probability = 1.0;
  net.set_fault_plan(plan);
  net.send(1, 2, PeeringRequest{});
  loop.run();
  EXPECT_EQ(received, 2u);
  EXPECT_EQ(net.fault_stats().duplicated, 1u);
  EXPECT_EQ(net.stats().messages, 1u);  // the duplicate is the fault's doing
}

TEST(ConConNetworkTest, PartitionBlocksBothDirectionsWithinWindow) {
  EventLoop loop;
  ConConNetwork net(loop);
  std::size_t received = 0;
  net.attach(1, [&](const Envelope&) { ++received; });
  net.attach(2, [&](const Envelope&) { ++received; });
  FaultPlan plan;
  plan.partitions = {{1, 2, kSecond, 3 * kSecond}};
  net.set_fault_plan(plan);

  net.send(1, 2, PeeringRequest{});  // t=0: before the window, flows
  loop.run_until(2 * kSecond);
  net.send(1, 2, PeeringRequest{});  // t=2s: inside, both directions cut
  net.send(2, 1, PeeringRequest{});
  loop.run_until(4 * kSecond);
  net.send(2, 1, PeeringRequest{});  // t=4s: healed
  loop.run();

  EXPECT_EQ(received, 2u);
  EXPECT_EQ(net.fault_stats().partition_drops, 2u);
}

TEST(ConConNetworkTest, SameSeedReplaysTheSameFaultSchedule) {
  const auto run_once = [] {
    EventLoop loop;
    ConConNetwork net(loop);
    std::vector<SimTime> deliveries;
    net.attach(2, [&](const Envelope&) { deliveries.push_back(loop.now()); });
    FaultPlan plan;
    plan.drop_probability = 0.3;
    plan.duplicate_probability = 0.2;
    plan.latency_jitter = 30 * kMillisecond;
    plan.reorder_window = 20 * kMillisecond;
    plan.seed = 1234;
    net.set_fault_plan(plan);
    for (int k = 0; k < 50; ++k) net.send(1, 2, PeeringRequest{});
    loop.run();
    return std::make_pair(deliveries, net.fault_stats());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_TRUE(a.second == b.second);
  EXPECT_GT(a.second.dropped, 0u);
  EXPECT_GT(a.second.duplicated, 0u);
}

TEST(ConConNetworkTest, TracksPeakConcurrentSessions) {
  EventLoop loop;
  ConConNetwork net(loop);
  for (AsNumber as = 2; as <= 6; ++as) net.attach(as, [](const Envelope&) {});
  for (AsNumber as = 2; as <= 6; ++as) net.send(1, as, PeeringRequest{});
  loop.run();
  EXPECT_EQ(net.stats().peak_concurrent_sessions, 5u);
  EXPECT_EQ(net.live_sessions(loop.now()), 5u);
}

}  // namespace
}  // namespace discs

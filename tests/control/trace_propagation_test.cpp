// End-to-end distributed-tracing tests over the simulated control plane:
// one invocation at the victim must yield a single causal tree whose
// records span every participating controller's shard, populate the
// time-to-protection histogram at the peers, and — when the sender has no
// tracer — put no context on the wire at all.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace_merge.hpp"

namespace discs {
namespace {

using telemetry::ShardRecord;
using telemetry::TraceShard;
using telemetry::TraceSummary;
using telemetry::load_trace_shard;
using telemetry::summarize_traces;

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }

class TracePropagationTest : public ::testing::Test {
 protected:
  TracePropagationTest()
      : rpki_({{pfx("10.0.0.0/8"), {1}},
               {pfx("20.0.0.0/8"), {2}},
               {pfx("30.0.0.0/8"), {3}}}),
        net_(loop_, 10 * kMillisecond) {}

  ~TracePropagationTest() override {
    for (const std::string& path : shard_paths_) std::remove(path.c_str());
  }

  std::unique_ptr<Controller> make_controller(AsNumber as) {
    ControllerConfig cfg;
    cfg.as = as;
    cfg.seed = as * 1000 + 7;
    return std::make_unique<Controller>(cfg, loop_, net_, rpki_);
  }

  /// Opens a shard-backed tracer for `as` and attaches it to `c`.
  telemetry::SpanTracer* attach_tracer(Controller& c, AsNumber as) {
    const std::string path = ::testing::TempDir() + "discs_prop_" +
                             std::to_string(::getpid()) + "_as" +
                             std::to_string(as) + ".jsonl";
    shard_paths_.push_back(path);
    auto tracer = std::make_unique<telemetry::SpanTracer>(as);
    if (!tracer->open(path, loop_.now())) ADD_FAILURE() << path;
    c.set_span_tracer(tracer.get());
    tracers_.push_back(std::move(tracer));
    return tracers_.back().get();
  }

  void flood_ads(std::vector<Controller*> controllers) {
    for (Controller* a : controllers) {
      for (Controller* b : controllers) {
        if (a != b) b->discover(a->advertisement());
      }
    }
    loop_.run_until(loop_.now() + 30 * kSecond);
  }

  std::vector<TraceShard> load_shards() {
    std::vector<TraceShard> shards;
    for (auto& tracer : tracers_) tracer->flush();
    for (const std::string& path : shard_paths_) {
      TraceShard shard;
      if (load_trace_shard(path, shard)) shards.push_back(std::move(shard));
    }
    return shards;
  }

  double ttp_count(const telemetry::MetricsRegistry& registry) {
    double total = 0;
    for (const auto& m : registry.snapshot().metrics) {
      if (m.name == "discs_time_to_protection_seconds") {
        total += static_cast<double>(m.histogram.count);
      }
    }
    return total;
  }

  InternetDataset rpki_;
  EventLoop loop_;
  ConConNetwork net_;
  std::vector<std::unique_ptr<telemetry::SpanTracer>> tracers_;
  std::vector<std::string> shard_paths_;
};

TEST_F(TracePropagationTest, OneInvocationYieldsOneCausalTreeAcrossNodes) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  auto c3 = make_controller(3);
  attach_tracer(*c1, 1);
  attach_tracer(*c2, 2);
  attach_tracer(*c3, 3);

  telemetry::MetricsRegistry registry;
  c2->bind_metrics(registry);
  c3->bind_metrics(registry);

  flood_ads({c1.get(), c2.get(), c3.get()});
  ASSERT_TRUE(c1->is_peer(2));
  ASSERT_TRUE(c1->is_peer(3));

  InvocationTriple triple;
  triple.victim_prefix = pfx("10.0.0.0/8");
  triple.functions = kInvokeAll;
  EXPECT_EQ(c1->invoke({triple}), 2u);
  loop_.run_until(loop_.now() + 10 * kSecond);

  // Both peers applied the filter and measured time-to-protection.
  EXPECT_EQ(ttp_count(registry), 2.0);

  // The three shards stitch into one invocation trace spanning all nodes.
  const auto shards = load_shards();
  ASSERT_EQ(shards.size(), 3u);
  const auto summaries = summarize_traces(shards);
  const TraceSummary* invocation = nullptr;
  for (const auto& s : summaries) {
    if (s.root_name == "invocation") {
      EXPECT_EQ(invocation, nullptr) << "more than one invocation trace";
      invocation = &s;
    }
  }
  ASSERT_NE(invocation, nullptr) << "no trace rooted at an invocation span";
  EXPECT_EQ(invocation->nodes, (std::set<std::uint32_t>{1, 2, 3}));
  EXPECT_GE(invocation->filter_installs, 2u);
  EXPECT_GE(invocation->spans, 3u);  // root + two execute_invocation

  // Wire records exist on both ends: the victim logged sends of the
  // InvocationRequest (msg type 6), each peer the matching recv.
  bool victim_sent = false, peer_received = false;
  for (const auto& shard : shards) {
    for (const auto& r : shard.records) {
      if (r.kind == ShardRecord::Kind::kSend && shard.as == 1 && r.msg == 6 &&
          r.trace == invocation->trace_id) {
        victim_sent = true;
      }
      if (r.kind == ShardRecord::Kind::kRecv && shard.as != 1 && r.msg == 6 &&
          r.trace == invocation->trace_id) {
        peer_received = true;
      }
    }
  }
  EXPECT_TRUE(victim_sent);
  EXPECT_TRUE(peer_received);

  c2->unbind_metrics();
  c3->unbind_metrics();
}

TEST_F(TracePropagationTest, UntracedSenderPutsNoContextOnTheWire) {
  auto c1 = make_controller(1);  // victim: no tracer attached
  auto c2 = make_controller(2);
  attach_tracer(*c2, 2);

  telemetry::MetricsRegistry registry;
  c2->bind_metrics(registry);

  flood_ads({c1.get(), c2.get()});
  ASSERT_TRUE(c1->is_peer(2));

  InvocationTriple triple;
  triple.victim_prefix = pfx("10.0.0.0/8");
  triple.functions = kInvokeAll;
  EXPECT_EQ(c1->invoke({triple}), 1u);
  loop_.run_until(loop_.now() + 10 * kSecond);

  // The peer executed the window (metrics prove it) but saw no trace
  // context: no recv records in its shard, no TTP sample, no spans rooted
  // in a foreign trace.
  EXPECT_EQ(ttp_count(registry), 0.0);
  const auto shards = load_shards();
  ASSERT_EQ(shards.size(), 1u);
  for (const auto& r : shards[0].records) {
    EXPECT_NE(r.kind, ShardRecord::Kind::kRecv);
    EXPECT_NE(r.name, "execute_invocation");
  }

  c2->unbind_metrics();
}

}  // namespace
}  // namespace discs

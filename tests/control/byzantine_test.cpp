// Byzantine-peer fuzz: a malicious or broken controller sprays arbitrary
// control messages at a DAS. Invariants:
//   * the victim controller never crashes;
//   * no defense function is ever installed for a prefix the sender does
//     not own (the §IV-E3 ownership check holds under fuzz);
//   * keys are only accepted from established peers;
//   * alarm/drop transitions only honor peers.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "control/controller.hpp"

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }
Ipv4Address ip(const char* t) { return *Ipv4Address::parse(t); }

class ByzantineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ByzantineFuzz, RandomMessageStormViolatesNoInvariant) {
  Xoshiro256 rng(GetParam());
  const InternetDataset rpki({
      {pfx("10.0.0.0/8"), {1}},   // the defender
      {pfx("20.0.0.0/8"), {2}},   // a legitimate peer
      {pfx("30.0.0.0/8"), {666}}, // the attacker-controlled DAS
      {pfx("40.0.0.0/8"), {4}},   // a bystander LAS
  });
  EventLoop loop;
  ConConNetwork net(loop, kMillisecond);

  ControllerConfig c1_cfg;
  c1_cfg.as = 1;
  c1_cfg.seed = 11;
  c1_cfg.max_peering_delay = 0;
  Controller defender(c1_cfg, loop, net, rpki);
  ControllerConfig c2_cfg;
  c2_cfg.as = 2;
  c2_cfg.seed = 22;
  c2_cfg.max_peering_delay = 0;
  Controller peer(c2_cfg, loop, net, rpki);

  // Legitimate peering between 1 and 2; AS 666 also becomes a peer (DISCS
  // peers under open policy — the ownership check is the backstop).
  ControllerConfig evil_cfg;
  evil_cfg.as = 666;
  evil_cfg.seed = 66;
  evil_cfg.max_peering_delay = 0;
  Controller evil(evil_cfg, loop, net, rpki);
  for (Controller* a : {&defender, &peer, &evil}) {
    for (Controller* b : {&defender, &peer, &evil}) {
      if (a != b) b->discover(a->advertisement());
    }
  }
  loop.run();
  ASSERT_TRUE(defender.is_peer(2));
  ASSERT_TRUE(defender.is_peer(666));
  const Key128 legit_key = defender.tables().key_v.find(2)->active;

  // The attacker now sprays 2000 random messages, many malformed or
  // unauthorized: invocations for other ASes' prefixes, keys with random
  // serials, teardowns, alarm quits, rejects...
  auto random_prefix = [&]() -> Prefix4 {
    const std::uint32_t bases[] = {0x0a000000, 0x14000000, 0x1e000000,
                                   0x28000000};
    return Prefix4(Ipv4Address(bases[rng.below(4)] |
                               (static_cast<std::uint32_t>(rng.next()) & 0xffff00)),
                   8 + static_cast<unsigned>(rng.below(17)));
  };
  for (int k = 0; k < 2000; ++k) {
    ControlMessage msg;
    switch (rng.below(8)) {
      case 0: msg = PeeringRequest{}; break;
      case 1: msg = PeeringAccept{}; break;
      case 2: msg = PeeringReject{"chaos"}; break;
      case 3:
        msg = KeyInstall{derive_key128(rng.next()), rng.next(),
                         rng.chance(0.5)};
        break;
      case 4: msg = KeyInstallAck{rng.next()}; break;
      case 5: {
        InvocationRequest inv;
        inv.alarm_mode = rng.chance(0.3);
        const std::size_t triples = 1 + rng.below(4);
        for (std::size_t t = 0; t < triples; ++t) {
          inv.triples.push_back({random_prefix(),
                                 static_cast<InvokableSet>(rng.below(16)),
                                 rng.below(kHour)});
        }
        msg = std::move(inv);
        break;
      }
      case 6: msg = AlarmQuit{}; break;
      case 7: msg = PeeringTeardown{"bye"}; break;
    }
    net.send(666, 1, std::move(msg));
    if (k % 64 == 0) loop.run();
  }
  loop.run();

  // Invariant 1: functions may exist ONLY for prefixes AS 666 owns (30/8).
  const SimTime now = loop.now();
  for (const char* addr : {"10.1.2.3", "20.1.2.3", "40.1.2.3"}) {
    EXPECT_EQ(defender.tables().out_dst.lookup(ip(addr), now).functions, 0)
        << addr;
    EXPECT_EQ(defender.tables().out_src.lookup(ip(addr), now).functions, 0)
        << addr;
    EXPECT_EQ(defender.tables().in_src.lookup(ip(addr), now).functions, 0)
        << addr;
    EXPECT_EQ(defender.tables().in_dst.lookup(ip(addr), now).functions, 0)
        << addr;
  }

  // Invariant 2: the legitimate peer's verification key is intact (random
  // KeyInstalls only ever touched the sender's own slot, and only while
  // peered).
  if (defender.is_peer(2)) {
    ASSERT_NE(defender.tables().key_v.find(2), nullptr);
    EXPECT_EQ(defender.tables().key_v.find(2)->active, legit_key);
  }

  // Invariant 3: the defender's own packets still flow to its peer.
  // (Control-plane chaos must not poison the data plane for bystanders.)
  auto packet = Ipv4Packet::make(ip("10.0.0.1"), ip("20.0.0.1"), IpProto::kUdp,
                                 {1, 2, 3});
  EXPECT_EQ(defender.router().process_outbound(packet, now), Verdict::kPass);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByzantineFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace discs

// ConRouChannel delivery semantics (latency, FIFO, cancellation, expiry
// sweeps) plus the controller-level teardown races the channel makes
// testable: a peering torn down while its transactions are still in flight
// must leave no orphaned keys or invocation windows behind.
#include "control/con_rou_channel.hpp"

#include <gtest/gtest.h>

#include "control/controller.hpp"
#include "crypto/cmac.hpp"

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }

class ConRouChannelTest : public ::testing::Test {
 protected:
  ConRouChannelTest() : engine_(tables_, 1) { tables_.seal(); }

  TableTransaction key_txn(AsNumber peer, std::uint64_t seed,
                           bool retain = false) {
    TableTransaction txn;
    txn.set_verify_key(peer, derive_key128(seed), retain);
    return txn;
  }

  RouterTables tables_;
  DataPlaneEngine engine_;
  EventLoop loop_;
};

TEST_F(ConRouChannelTest, ZeroLatencyDeliversSynchronously) {
  ConRouChannel channel(loop_, engine_, /*latency=*/0);
  channel.submit(key_txn(5, 1));
  // No loop interaction needed: the tables changed on the submitting thread.
  EXPECT_TRUE(tables_.key_v.has_key(5));
  EXPECT_EQ(channel.pending(), 0u);
  EXPECT_EQ(channel.stats().submitted, 1u);
  EXPECT_EQ(channel.stats().delivered, 1u);
  EXPECT_EQ(channel.stats().last_epoch, tables_.applied_epoch());
}

TEST_F(ConRouChannelTest, LatencyHoldsDeliveryBack) {
  ConRouChannel channel(loop_, engine_, 50 * kMillisecond);
  const auto id = channel.submit(key_txn(5, 1));
  EXPECT_TRUE(channel.is_pending(id));
  EXPECT_FALSE(tables_.key_v.has_key(5));

  loop_.run_until(40 * kMillisecond);
  EXPECT_FALSE(tables_.key_v.has_key(5));  // still on the wire
  loop_.run_until(60 * kMillisecond);
  EXPECT_TRUE(tables_.key_v.has_key(5));
  EXPECT_FALSE(channel.is_pending(id));
  EXPECT_EQ(channel.stats().ops_delivered, 1u);
}

TEST_F(ConRouChannelTest, DeliveryIsFifoAtEqualTimestamps) {
  ConRouChannel channel(loop_, engine_, 10 * kMillisecond);
  channel.submit(key_txn(5, 1));
  channel.submit(key_txn(5, 2, /*retain=*/true));  // re-key arrives second
  loop_.run_until(kSecond);
  const KeyTable::Entry* entry = tables_.key_v.find(5);
  ASSERT_NE(entry, nullptr);
  // FIFO: the re-key applied last, so seed-2 is active and seed-1 the grace
  // key. Reversed delivery would leave seed-1 active with no grace key.
  EXPECT_EQ(entry->active, derive_key128(2));
  ASSERT_TRUE(entry->previous.has_value());
  EXPECT_EQ(*entry->previous, derive_key128(1));
}

TEST_F(ConRouChannelTest, CancelWithdrawsBeforeDelivery) {
  ConRouChannel channel(loop_, engine_, 50 * kMillisecond);
  const auto id = channel.submit(key_txn(5, 1));
  EXPECT_TRUE(channel.cancel(id));
  loop_.run_until(kSecond);
  EXPECT_FALSE(tables_.key_v.has_key(5));
  EXPECT_EQ(channel.stats().canceled, 1u);
  EXPECT_EQ(channel.stats().delivered, 0u);
  // Delivery already happened -> cancel loses the race by design.
  ConRouChannel instant(loop_, engine_, 0);
  const auto delivered_id = instant.submit(key_txn(6, 2));
  EXPECT_FALSE(instant.cancel(delivered_id));
}

TEST_F(ConRouChannelTest, SubmitAfterAddsExtraDelay) {
  ConRouChannel channel(loop_, engine_, 10 * kMillisecond);
  channel.submit_after(kSecond, key_txn(5, 1));
  loop_.run_until(kSecond);  // latency alone would have delivered by now
  EXPECT_FALSE(tables_.key_v.has_key(5));
  loop_.run_until(kSecond + 20 * kMillisecond);
  EXPECT_TRUE(tables_.key_v.has_key(5));
}

TEST_F(ConRouChannelTest, SubmitImmediateBypassesLatency) {
  ConRouChannel channel(loop_, engine_, kHour);
  const TableEpoch epoch = channel.submit_immediate(key_txn(5, 1));
  EXPECT_TRUE(tables_.key_v.has_key(5));
  EXPECT_EQ(epoch, tables_.applied_epoch());
  EXPECT_EQ(channel.pending(), 0u);
}

TEST_F(ConRouChannelTest, RelativeInstallGetsAnExpirySweep) {
  ConRouChannel channel(loop_, engine_, 10 * kMillisecond,
                        /*expiry_grace=*/2 * kSecond);
  TableTransaction txn;
  txn.install_function(FunctionDirection::kOutDst, AnyPrefix(pfx("10.0.0.0/8")),
                       DefenseFunction::kDp, kMinute);
  channel.submit(std::move(txn));
  loop_.run_until(kSecond);
  EXPECT_EQ(tables_.out_dst.window_count(), 1u);
  EXPECT_EQ(channel.pending(), 1u);  // the scheduled sweep

  // Window ends at delivery + 1 min; the sweep fires one grace later and
  // physically removes it.
  loop_.run_until(kMinute + 3 * kSecond);
  EXPECT_EQ(tables_.out_dst.window_count(), 0u);
  EXPECT_EQ(channel.stats().expiry_sweeps, 1u);
  EXPECT_EQ(channel.pending(), 0u);
}

TEST_F(ConRouChannelTest, CancelAllClearsTransactionsAndSweeps) {
  ConRouChannel channel(loop_, engine_, 10 * kMillisecond);
  TableTransaction txn;
  txn.install_function(FunctionDirection::kOutDst, AnyPrefix(pfx("10.0.0.0/8")),
                       DefenseFunction::kDp, kMinute);
  channel.submit(std::move(txn));
  loop_.run_until(kSecond);         // delivered; sweep now pending
  channel.submit(key_txn(5, 1));    // second txn still in flight
  EXPECT_EQ(channel.pending(), 2u);
  channel.cancel_all();
  EXPECT_EQ(channel.pending(), 0u);
  loop_.run_until(kHour);
  EXPECT_FALSE(tables_.key_v.has_key(5));
  EXPECT_EQ(tables_.out_dst.window_count(), 1u);  // sweep withdrawn
}

// ---- controller-level teardown/undeploy races (ISSUE satellite) ----

class TeardownRaceTest : public ::testing::Test {
 protected:
  TeardownRaceTest()
      : rpki_({{pfx("10.0.0.0/8"), {1}},
               {pfx("20.0.0.0/8"), {2}}}),
        net_(loop_, 10 * kMillisecond) {}

  std::unique_ptr<Controller> make_controller(AsNumber as,
                                              ControllerConfig extra = {}) {
    ControllerConfig cfg = extra;
    cfg.as = as;
    cfg.seed = as * 1000 + 7;
    return std::make_unique<Controller>(cfg, loop_, net_, rpki_);
  }

  void flood_ads(std::vector<Controller*> controllers) {
    for (Controller* a : controllers) {
      for (Controller* b : controllers) {
        if (a != b) b->discover(a->advertisement());
      }
    }
    loop_.run_until(loop_.now() + 30 * kSecond);
  }

  /// The orphan-freedom invariant: after the loop drains, the channel is
  /// empty and the tables' epoch is exactly the last transaction the channel
  /// applied — nothing mutated them behind the pipeline's back.
  static void expect_settled(Controller& c) {
    EXPECT_EQ(c.con_rou().pending(), 0u);
    EXPECT_EQ(c.tables().applied_epoch(), c.con_rou().stats().last_epoch);
  }

  InternetDataset rpki_;
  EventLoop loop_;
  ConConNetwork net_;
};

TEST_F(TeardownRaceTest, TeardownWithdrawsInFlightInvocation) {
  ControllerConfig slow;
  slow.con_rou_latency = 100 * kMillisecond;
  auto c1 = make_controller(1);        // victim
  auto c2 = make_controller(2, slow);  // peer with a slow con-rou path
  flood_ads({c1.get(), c2.get()});

  ASSERT_EQ(c1->invoke_ddos_defense(pfx("10.1.0.0/16"), false), 1u);
  // Let the invocation message reach AS 2 (10 ms) but tear the peering down
  // before its table transaction survives the 100 ms con-rou latency.
  loop_.run_until(loop_.now() + 50 * kMillisecond);
  ASSERT_GE(c2->con_rou().pending(), 1u);
  EXPECT_EQ(c2->tables().out_dst.window_count(), 0u);

  c2->tear_down_peering(1, "conflict of interest");
  loop_.run_until(loop_.now() + 5 * kSecond);

  // The in-flight install was withdrawn: no orphaned windows, no keys, and
  // the epoch accounts for every applied transaction.
  EXPECT_EQ(c2->tables().out_dst.window_count(), 0u);
  EXPECT_EQ(c2->tables().out_src.window_count(), 0u);
  EXPECT_FALSE(c2->tables().key_s.has_key(1));
  EXPECT_FALSE(c2->tables().key_v.has_key(1));
  EXPECT_GE(c2->con_rou().stats().canceled, 1u);
  expect_settled(*c2);
  // The other side processed the teardown message symmetrically.
  EXPECT_FALSE(c1->tables().key_s.has_key(2));
  EXPECT_FALSE(c1->tables().key_v.has_key(2));
  EXPECT_FALSE(c1->is_peer(2));
}

TEST_F(TeardownRaceTest, TeardownMidRekeyLeavesNoOrphanedKeys) {
  ControllerConfig slow;
  slow.con_rou_latency = 100 * kMillisecond;
  auto c1 = make_controller(1);
  auto c2 = make_controller(2, slow);
  flood_ads({c1.get(), c2.get()});
  ASSERT_TRUE(c2->tables().key_v.has_key(1));

  // Start a re-key toward AS 2; its new-verify-key transaction and the
  // +2 s finish_rekey are now queued behind AS 2's con-rou latency.
  c1->rekey_all_peers();
  loop_.run_until(loop_.now() + 50 * kMillisecond);
  ASSERT_GE(c2->con_rou().pending(), 1u);

  c1->tear_down_peering(2, "policy");
  loop_.run_until(loop_.now() + 10 * kSecond);

  EXPECT_FALSE(c1->tables().key_s.has_key(2));
  EXPECT_FALSE(c1->tables().key_v.has_key(2));
  EXPECT_FALSE(c2->tables().key_s.has_key(1));
  EXPECT_FALSE(c2->tables().key_v.has_key(1));
  expect_settled(*c1);
  expect_settled(*c2);
}

TEST_F(TeardownRaceTest, ShutdownCancelsEverythingInFlight) {
  ControllerConfig slow;
  slow.con_rou_latency = 100 * kMillisecond;
  auto c1 = make_controller(1);
  auto c2 = make_controller(2, slow);
  flood_ads({c1.get(), c2.get()});

  // An invocation is mid-flight toward AS 2's routers when AS 2 leaves the
  // collaboration entirely.
  c1->invoke_ddos_defense(pfx("10.1.0.0/16"), false);
  loop_.run_until(loop_.now() + 50 * kMillisecond);
  c2->shutdown();

  EXPECT_EQ(c2->con_rou().pending(), 0u);
  EXPECT_EQ(c2->tables().key_s.size(), 0u);
  EXPECT_EQ(c2->tables().key_v.size(), 0u);
  EXPECT_EQ(c2->tables().out_dst.window_count(), 0u);
  loop_.run_until(loop_.now() + 5 * kSecond);
  // Nothing resurrects state after shutdown.
  EXPECT_EQ(c2->tables().key_v.size(), 0u);
  EXPECT_EQ(c2->tables().out_dst.window_count(), 0u);
  expect_settled(*c2);
}

TEST_F(TeardownRaceTest, EpochTracksChannelOnTheHappyPath) {
  auto c1 = make_controller(1);
  auto c2 = make_controller(2);
  flood_ads({c1.get(), c2.get()});
  c1->invoke_ddos_defense(pfx("10.1.0.0/16"), false);
  // Drain past the default 24 h invocation plus the expiry grace so both
  // channels have fired their sweeps and hold nothing in flight.
  loop_.run_until(loop_.now() + 25 * kHour);
  expect_settled(*c1);
  expect_settled(*c2);
  EXPECT_GT(c1->tables().applied_epoch(), 0u);
  // The sweeps physically removed the lapsed windows on both sides.
  EXPECT_EQ(c1->tables().in_dst.window_count(), 0u);
  EXPECT_EQ(c2->tables().out_dst.window_count(), 0u);
}

}  // namespace
}  // namespace discs

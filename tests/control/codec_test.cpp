// Wire-codec tests: round trips for every message type, format pinning,
// and decode fuzzing (mutations + garbage must never crash or mis-accept).
#include "control/codec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "random_envelope.hpp"

namespace discs {
namespace {

Envelope wrap(ControlMessage message) {
  return Envelope{65001, 65002, std::move(message)};
}

void expect_round_trip(const Envelope& envelope) {
  const auto wire = encode_envelope(envelope);
  const auto back = decode_envelope(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->from, envelope.from);
  EXPECT_EQ(back->to, envelope.to);
  EXPECT_EQ(message_type(back->message), message_type(envelope.message));
  EXPECT_EQ(encode_envelope(*back), wire);  // canonical re-encoding
}

TEST(CodecTest, EmptyBodyMessages) {
  expect_round_trip(wrap(PeeringRequest{}));
  expect_round_trip(wrap(PeeringAccept{}));
  expect_round_trip(wrap(AlarmQuit{}));
}

TEST(CodecTest, ReasonCarryingMessages) {
  expect_round_trip(wrap(PeeringReject{"blacklisted"}));
  expect_round_trip(wrap(InvocationReject{"ownership check failed"}));
  expect_round_trip(wrap(PeeringTeardown{"undeploying"}));
  // Content check.
  const auto wire = encode_envelope(wrap(PeeringReject{"why"}));
  const auto back = decode_envelope(wire);
  EXPECT_EQ(std::get<PeeringReject>(back->message).reason, "why");
}

TEST(CodecTest, KeyInstallRoundTrip) {
  KeyInstall body;
  body.key = derive_key128(42);
  body.serial = 0x1122334455667788ull;
  body.rekey = true;
  expect_round_trip(wrap(body));
  const auto back = decode_envelope(encode_envelope(wrap(body)));
  const auto& decoded = std::get<KeyInstall>(back->message);
  EXPECT_EQ(decoded.key, body.key);
  EXPECT_EQ(decoded.serial, body.serial);
  EXPECT_TRUE(decoded.rekey);
}

TEST(CodecTest, InvocationRequestWithMixedFamilies) {
  InvocationRequest body;
  body.alarm_mode = true;
  body.triples.push_back({*Prefix4::parse("10.1.0.0/16"),
                          invoke_mask(InvokableFunction::kDp) |
                              invoke_mask(InvokableFunction::kCdp),
                          24 * kHour});
  body.triples.push_back({*Prefix6::parse("2400:1::/32"),
                          invoke_mask(InvokableFunction::kSp), kHour});
  expect_round_trip(wrap(body));

  const auto back = decode_envelope(encode_envelope(wrap(body)));
  const auto& decoded = std::get<InvocationRequest>(back->message);
  ASSERT_EQ(decoded.triples.size(), 2u);
  EXPECT_TRUE(decoded.alarm_mode);
  EXPECT_EQ(decoded.triples[0], body.triples[0]);
  EXPECT_EQ(decoded.triples[1], body.triples[1]);
}

TEST(CodecTest, HeaderFormatIsPinned) {
  Envelope envelope{0x01020304, 0x0a0b0c0d, PeeringRequest{}};
  envelope.seq = 0x1122334455667788ull;
  envelope.ack_requested = true;
  const auto wire = encode_envelope(envelope);
  ASSERT_EQ(wire.size(), 24u);
  EXPECT_EQ(wire[0], 'D');
  EXPECT_EQ(wire[3], '2');
  EXPECT_EQ(wire[4], 1);  // kPeeringRequest
  EXPECT_EQ(wire[5], 1);  // flags: ack requested
  EXPECT_EQ(wire[6], 0);  // reserved
  EXPECT_EQ(wire[7], 0);
  EXPECT_EQ(wire[8], 0x01);
  EXPECT_EQ(wire[11], 0x04);
  EXPECT_EQ(wire[12], 0x0a);
  EXPECT_EQ(wire[15], 0x0d);
  EXPECT_EQ(wire[16], 0x11);  // seq, big-endian
  EXPECT_EQ(wire[23], 0x88);

  const auto back = decode_envelope(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, envelope.seq);
  EXPECT_TRUE(back->ack_requested);
}

TEST(CodecTest, RejectsUnknownFlagBits) {
  auto wire = encode_envelope(wrap(PeeringRequest{}));
  wire[5] = 0x04;  // undefined flag bit (bit 1 is now the trace context)
  EXPECT_FALSE(decode_envelope(wire).has_value());
  wire[5] = 0x80;
  EXPECT_FALSE(decode_envelope(wire).has_value());
}

// ---- trace-context extension (flag bit 1): 24 bytes between header and
// body, optional, and invisible when absent — a context-free envelope must
// encode byte-identically to the pre-extension codec.

TEST(CodecTest, TraceContextRoundTripsOnEveryVariant) {
  Xoshiro256 rng(0x77ace);
  for (std::size_t k = 0; k < 24; ++k) {  // two laps over the 12 variants
    Envelope envelope = testing::random_envelope(rng, k);
    envelope.trace = telemetry::TraceContext{rng.next(), rng.next(), rng.next()};
    const auto wire = encode_envelope(envelope);
    EXPECT_EQ(wire[5] & 0x02, 0x02) << "trace flag bit must be set";
    const auto back = decode_envelope(wire);
    ASSERT_TRUE(back.has_value()) << "variant " << k % 12;
    ASSERT_TRUE(back->trace.has_value());
    EXPECT_TRUE(*back == envelope) << "variant " << k % 12;
    EXPECT_EQ(encode_envelope(*back), wire);

    envelope.trace.reset();
    const auto bare = encode_envelope(envelope);
    EXPECT_EQ(bare.size() + 24, wire.size());
    const auto bare_back = decode_envelope(bare);
    ASSERT_TRUE(bare_back.has_value());
    EXPECT_FALSE(bare_back->trace.has_value());
  }
}

TEST(CodecTest, TraceContextFieldsArePinned) {
  Envelope envelope = wrap(PeeringRequest{});
  envelope.trace =
      telemetry::TraceContext{0x1111111111111111ull, 0x2222222222222222ull,
                              0x3333333333333333ull};
  const auto wire = encode_envelope(envelope);
  ASSERT_EQ(wire.size(), 48u);  // 24 header + 24 extension, empty body
  EXPECT_EQ(wire[5], 0x02);     // flags: trace context only
  EXPECT_EQ(wire[24], 0x11);    // trace id, big-endian
  EXPECT_EQ(wire[32], 0x22);    // parent span id
  EXPECT_EQ(wire[40], 0x33);    // origin timestamp
  EXPECT_EQ(wire[47], 0x33);

  // Truncating anywhere inside the extension must reject, not mis-parse.
  for (std::size_t cut = 24; cut < wire.size(); ++cut) {
    EXPECT_FALSE(decode_envelope(std::span(wire.data(), cut)).has_value())
        << cut;
  }
}

TEST(CodecTest, PreExtensionFramesStillDecode) {
  // Golden frames captured from the pre-extension codec (hex): decoding
  // them must keep working forever, and re-encoding the decoded envelope
  // without a context must reproduce the bytes exactly — the wire format
  // only grew, it never moved.
  const auto from_hex = [](std::string_view hex) {
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
      const auto nib = [](char c) -> unsigned {
        return c <= '9' ? static_cast<unsigned>(c - '0')
                        : static_cast<unsigned>(c - 'a' + 10);
      };
      out.push_back(static_cast<std::uint8_t>((nib(hex[i]) << 4) |
                                              nib(hex[i + 1])));
    }
    return out;
  };
  struct GoldenFrame {
    const char* hex;
    Envelope expected;
  };
  Envelope peering = wrap(PeeringRequest{});
  peering.seq = 7;
  peering.ack_requested = true;
  Envelope ack = wrap(KeyInstallAck{0x2a});
  Envelope reject = wrap(PeeringReject{"no"});
  Envelope invocation =
      wrap(InvocationRequest{{{*Prefix4::parse("10.0.0.0/8"), 0x0f, kHour}},
                             false});
  const GoldenFrame golden[] = {
      // PeeringRequest, seq 7, ack_requested (flags 0x01).
      {"44435332010100000000fde90000fdea0000000000000007", peering},
      // KeyInstallAck serial 0x2a.
      {"44435332050000000000fde90000fdea0000000000000000000000000000002a",
       ack},
      // PeeringReject "no".
      {"44435332030000000000fde90000fdea000000000000000000026e6f", reject},
      // InvocationRequest: one v4 triple 10.0.0.0/8, functions 0x0f, 1h.
      {"44435332060000000000fde90000fdea0000000000000000000001040a0000000"
       "80f00000000d693a400",
       invocation},
  };
  for (const auto& [hex, expected] : golden) {
    const auto wire = from_hex(hex);
    const auto back = decode_envelope(wire);
    ASSERT_TRUE(back.has_value()) << hex;
    EXPECT_TRUE(*back == expected) << hex;
    EXPECT_EQ(encode_envelope(expected), wire) << hex;
  }
}

TEST(CodecTest, ReliabilityMessagesRoundTrip) {
  expect_round_trip(wrap(DeliveryAck{0xdeadbeefull}));
  expect_round_trip(wrap(RekeyComplete{42}));
  expect_round_trip(wrap(InvocationAccept{3, 77}));
  expect_round_trip(wrap(InvocationReject{"nope", 78}));

  const auto back = decode_envelope(encode_envelope(wrap(InvocationAccept{3, 77})));
  EXPECT_EQ(std::get<InvocationAccept>(back->message).request_seq, 77u);
}

TEST(CodecTest, RejectsBadMagicUnknownTypeTruncationAndTrailing) {
  auto wire = encode_envelope(wrap(KeyInstall{}));
  auto bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_FALSE(decode_envelope(bad_magic).has_value());

  auto bad_type = wire;
  bad_type[4] = 200;
  EXPECT_FALSE(decode_envelope(bad_type).has_value());

  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(decode_envelope(std::span(wire.data(), cut)).has_value()) << cut;
  }

  auto trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(decode_envelope(trailing).has_value());
}

TEST(CodecTest, RejectsOutOfRangePrefixLengths) {
  InvocationRequest body;
  body.triples.push_back({*Prefix4::parse("10.0.0.0/8"), 1, kHour});
  auto wire = encode_envelope(wrap(body));
  // The v4 prefix length byte sits 5 bytes from the end of the triple:
  // [family(1) addr(4) len(1) functions(1) duration(8)] at the tail.
  wire[wire.size() - 10] = 40;  // len > 32
  EXPECT_FALSE(decode_envelope(wire).has_value());
}

// ---- u16 length-prefix boundary (regression for the silent static_cast
// truncation in put_string and the InvocationRequest triple count). On the
// pre-fix codec the 65536 cases encoded a length of 0 / a count of 0 and
// the 65536-triple body decoded as trailing junk; now anything that does
// not fit the prefix throws std::length_error at the sender.

TEST(CodecTest, StringAtExactU16BoundaryRoundTrips) {
  const std::string reason(kMaxWireLength, 'r');
  const auto wire = encode_envelope(wrap(PeeringReject{reason}));
  const auto back = decode_envelope(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<PeeringReject>(back->message).reason, reason);
}

TEST(CodecTest, StringPastU16BoundaryThrowsInsteadOfTruncating) {
  const std::string reason(kMaxWireLength + 1, 'r');
  EXPECT_THROW(encode_envelope(wrap(PeeringReject{reason})),
               std::length_error);
  EXPECT_THROW(encode_envelope(wrap(PeeringTeardown{reason})),
               std::length_error);
  EXPECT_THROW(encode_envelope(wrap(InvocationReject{reason, 1})),
               std::length_error);
}

TEST(CodecTest, TripleCountAtExactU16BoundaryRoundTrips) {
  InvocationRequest body;
  body.triples.assign(kMaxWireLength,
                      {*Prefix4::parse("10.0.0.0/8"), 1, kHour});
  const auto wire = encode_envelope(wrap(body));
  const auto back = decode_envelope(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<InvocationRequest>(back->message).triples.size(),
            static_cast<std::size_t>(kMaxWireLength));
}

TEST(CodecTest, TripleCountPastU16BoundaryThrowsInsteadOfTruncating) {
  InvocationRequest body;
  body.triples.assign(kMaxWireLength + 1,
                      {*Prefix4::parse("10.0.0.0/8"), 1, kHour});
  EXPECT_THROW(encode_envelope(wrap(body)), std::length_error);
}

// ---- encode ∘ decode round-trip property over the full message space:
// every variant (the generator cycles all 12), v4/v6 prefixes biased to
// the 0/32/128 length extremes, strings from empty to multi-KB. Field
// equality via the defaulted operator== — not just type equality.

TEST(CodecTest, EveryVariantRoundTripsFieldForField) {
  Xoshiro256 rng(0x10a0);
  for (std::size_t k = 0; k < 600; ++k) {
    const Envelope envelope = testing::random_envelope(rng, k);
    const auto wire = encode_envelope(envelope);
    const auto back = decode_envelope(wire);
    ASSERT_TRUE(back.has_value()) << "variant " << k % 12;
    EXPECT_TRUE(*back == envelope) << "variant " << k % 12;
    EXPECT_EQ(encode_envelope(*back), wire);  // canonical
  }
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, MutationsNeverCrashAndReEncodeCanonically) {
  Xoshiro256 rng(GetParam());
  const std::vector<Envelope> corpus = {
      wrap(PeeringRequest{}),
      wrap(PeeringReject{"reason string"}),
      wrap(KeyInstall{derive_key128(1), 7, false}),
      wrap(InvocationRequest{
          {{*Prefix4::parse("10.0.0.0/8"), kInvokeAll, kHour},
           {*Prefix6::parse("2400:2::/32"), 3, kMinute}},
          false}),
      wrap(InvocationAccept{5}),
  };
  for (int k = 0; k < 2000; ++k) {
    auto wire = encode_envelope(corpus[rng.below(corpus.size())]);
    const std::size_t mutations = 1 + rng.below(5);
    for (std::size_t m = 0; m < mutations; ++m) {
      wire[rng.below(wire.size())] = static_cast<std::uint8_t>(rng.next());
    }
    if (rng.chance(0.25)) wire.resize(rng.below(wire.size() + 1));
    const auto decoded = decode_envelope(wire);  // must not crash
    if (decoded) {
      // Whatever is accepted must re-encode to a decodable canonical form.
      const auto rewire = encode_envelope(*decoded);
      const auto again = decode_envelope(rewire);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(encode_envelope(*again), rewire);
    }
  }
}

TEST_P(CodecFuzz, PureGarbageNeverDecodes) {
  Xoshiro256 rng(GetParam() ^ 0xdead);
  int accepted = 0;
  for (int k = 0; k < 2000; ++k) {
    std::vector<std::uint8_t> garbage(rng.below(80));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    accepted += decode_envelope(garbage).has_value();
  }
  // Random bytes essentially never start with "DCS1".
  EXPECT_EQ(accepted, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace discs

// Deterministic random ControlMessage/Envelope generator shared by the
// codec round-trip property test (tests/control/codec_test.cpp) and the
// decode-fuzz harness (tools/codec_fuzz.cpp): one generator means the fuzz
// corpus and the property test cover the same envelope space — all 12
// message variants, v4/v6 victim prefixes at the length extremes (0, 32,
// 128), and strings from empty through the 65535-byte wire maximum.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "control/codec.hpp"
#include "control/messages.hpp"
#include "crypto/cmac.hpp"

namespace discs::testing {

inline std::string random_reason(Xoshiro256& rng) {
  // Mostly short human-ish strings; occasionally empty or huge (the
  // boundary cases regression-tested explicitly live in codec_test).
  const std::uint64_t shape = rng.next() % 8;
  std::size_t len = 0;
  if (shape == 0) {
    len = 0;
  } else if (shape == 7) {
    len = 4096 + static_cast<std::size_t>(rng.next() % 4096);
  } else {
    len = static_cast<std::size_t>(rng.next() % 64);
  }
  std::string s(len, '\0');
  for (char& c : s) c = static_cast<char>(rng.next() & 0xff);
  return s;
}

inline VictimPrefix random_victim_prefix(Xoshiro256& rng) {
  if (rng.next() % 2 == 0) {
    // v4; lengths hit 0 and 32 often, everything in between sometimes.
    const std::uint64_t shape = rng.next() % 4;
    const std::uint8_t len =
        shape == 0 ? 0
                   : (shape == 1 ? 32
                                 : static_cast<std::uint8_t>(rng.next() % 33));
    return VictimPrefix{
        Prefix4(Ipv4Address(static_cast<std::uint32_t>(rng.next())), len)};
  }
  const std::uint64_t shape = rng.next() % 4;
  const std::uint8_t len =
      shape == 0 ? 0
                 : (shape == 1 ? 128
                               : static_cast<std::uint8_t>(rng.next() % 129));
  std::array<std::uint8_t, 16> bytes{};
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next() & 0xff);
  return VictimPrefix{Prefix6(Ipv6Address(bytes), len)};
}

inline InvocationTriple random_triple(Xoshiro256& rng) {
  InvocationTriple triple;
  triple.victim_prefix = random_victim_prefix(rng);
  triple.functions = static_cast<InvokableSet>(rng.next() & 0xff);
  triple.duration = rng.next();
  return triple;
}

/// A random message of variant index `which` (0..11); callers cycle
/// `which` to guarantee every variant appears in a corpus.
inline ControlMessage random_message(Xoshiro256& rng, std::size_t which) {
  switch (which % 12) {
    case 0: return PeeringRequest{};
    case 1: return PeeringAccept{};
    case 2: return PeeringReject{random_reason(rng)};
    case 3: return KeyInstall{derive_key128(rng.next()), rng.next(),
                              (rng.next() & 1) != 0};
    case 4: return KeyInstallAck{rng.next()};
    case 5: {
      InvocationRequest req;
      req.alarm_mode = (rng.next() & 1) != 0;
      const std::size_t n = static_cast<std::size_t>(rng.next() % 8);
      for (std::size_t i = 0; i < n; ++i) {
        req.triples.push_back(random_triple(rng));
      }
      return req;
    }
    case 6: return InvocationAccept{static_cast<std::size_t>(rng.next() % 4096),
                                    rng.next()};
    case 7: return InvocationReject{random_reason(rng), rng.next()};
    case 8: return AlarmQuit{};
    case 9: return PeeringTeardown{random_reason(rng)};
    case 10: return DeliveryAck{rng.next()};
    default: return RekeyComplete{rng.next()};
  }
}

inline Envelope random_envelope(Xoshiro256& rng, std::size_t which) {
  Envelope envelope;
  envelope.from = static_cast<AsNumber>(rng.next());
  envelope.to = static_cast<AsNumber>(rng.next());
  envelope.seq = rng.next();
  envelope.ack_requested = (rng.next() & 1) != 0;
  // Half the corpus carries the optional trace-context extension so the
  // property tests and fuzzer cover both frame shapes.
  if ((rng.next() & 1) != 0) {
    envelope.trace =
        telemetry::TraceContext{rng.next(), rng.next(), rng.next()};
  }
  envelope.message = random_message(rng, which);
  return envelope;
}

}  // namespace discs::testing

// UdpTransport unit tests over real loopback sockets: envelopes arrive
// intact, every silent-by-contract failure mode is counted, the loss shim
// and pair-blocking are deterministic, and the endpoint map parser rejects
// malformed deployments with line-accurate errors.
#include "transport/udp_transport.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <sstream>
#include <vector>

#include "control/codec.hpp"
#include "crypto/cmac.hpp"
#include "transport/endpoint_map.hpp"

namespace discs {
namespace {

/// Two-AS loopback world on kernel-assigned ports.
class UdpLoopbackTest : public ::testing::Test {
 protected:
  UdpLoopbackTest()
      : driver_(loop_),
        transport_(driver_,
                   {{1, {"127.0.0.1", 0}}, {2, {"127.0.0.1", 0}}}) {
    transport_.attach(1, [this](const Envelope& e) { at1_.push_back(e); });
    transport_.attach(2, [this](const Envelope& e) { at2_.push_back(e); });
  }

  Envelope make(AsNumber from, AsNumber to, std::uint64_t seq) {
    Envelope envelope{from, to, PeeringRequest{}};
    envelope.seq = seq;
    return envelope;
  }

  /// Fires raw bytes at an attached AS's socket from an anonymous sender.
  void send_raw(AsNumber to, const std::vector<std::uint8_t>& bytes) {
    const int fd = socket(AF_INET, SOCK_DGRAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in dst{};
    dst.sin_family = AF_INET;
    dst.sin_port = htons(transport_.local_port(to));
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &dst.sin_addr), 1);
    ASSERT_EQ(sendto(fd, bytes.data(), bytes.size(), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof(dst)),
              static_cast<ssize_t>(bytes.size()));
    close(fd);
  }

  EventLoop loop_;
  RealtimeDriver driver_;
  UdpTransport transport_;
  std::vector<Envelope> at1_;
  std::vector<Envelope> at2_;
};

TEST_F(UdpLoopbackTest, EphemeralBindPatchesTheMap) {
  EXPECT_EQ(transport_.attached_count(), 2u);
  EXPECT_NE(transport_.local_port(1), 0);
  EXPECT_NE(transport_.local_port(2), 0);
  EXPECT_NE(transport_.local_port(1), transport_.local_port(2));
  // The patched map is what send() routes by.
  EXPECT_EQ(transport_.endpoints().at(1).port, transport_.local_port(1));
  EXPECT_EQ(transport_.local_port(99), 0);  // never attached
}

TEST_F(UdpLoopbackTest, EnvelopesCrossTheSocketIntact) {
  Envelope envelope{1, 2, KeyInstall{derive_key128(7), 42, true}};
  envelope.seq = 9;
  envelope.ack_requested = true;
  transport_.send(envelope);

  ASSERT_TRUE(driver_.run_until_cond([&] { return !at2_.empty(); }, kSecond));
  EXPECT_TRUE(at2_.front() == envelope);
  EXPECT_TRUE(at1_.empty());
  EXPECT_EQ(transport_.stats().datagrams_sent, 1u);
  EXPECT_EQ(transport_.stats().datagrams_received, 1u);
  EXPECT_EQ(transport_.stats().bytes_sent, encode_envelope(envelope).size());
  EXPECT_EQ(transport_.stats().bytes_sent, transport_.stats().bytes_received);
}

TEST_F(UdpLoopbackTest, GarbageDatagramsAreCountedNotDelivered) {
  send_raw(2, {0xde, 0xad, 0xbe, 0xef});
  send_raw(2, std::vector<std::uint8_t>(64, 0x00));
  ASSERT_TRUE(driver_.run_until_cond(
      [&] { return transport_.stats().decode_errors == 2; }, kSecond));
  EXPECT_TRUE(at2_.empty());
}

TEST_F(UdpLoopbackTest, MisroutedEnvelopesAreCountedNotDelivered) {
  // A valid frame addressed to AS 3, thrown at AS 2's socket.
  send_raw(2, encode_envelope(make(1, 3, 1)));
  ASSERT_TRUE(driver_.run_until_cond(
      [&] { return transport_.stats().misrouted == 1; }, kSecond));
  EXPECT_TRUE(at2_.empty());
  EXPECT_EQ(transport_.stats().decode_errors, 0u);
}

TEST_F(UdpLoopbackTest, UnmappedDestinationIsSilentAndCounted) {
  transport_.send(make(1, 99, 1));  // AS 99 not in the map
  EXPECT_EQ(transport_.stats().no_endpoint, 1u);
  EXPECT_EQ(transport_.stats().datagrams_sent, 0u);
}

TEST_F(UdpLoopbackTest, UnattachedSourceIsSilentAndCounted) {
  transport_.detach(1);
  transport_.send(make(1, 2, 1));
  EXPECT_EQ(transport_.stats().not_attached, 1u);
  EXPECT_EQ(transport_.stats().datagrams_sent, 0u);
  EXPECT_EQ(transport_.attached_count(), 1u);
}

TEST_F(UdpLoopbackTest, FullLossShimEatsEverySend) {
  transport_.set_loss(LossShim{1.0, 77});
  for (std::uint64_t s = 1; s <= 20; ++s) transport_.send(make(1, 2, s));
  EXPECT_EQ(transport_.stats().shim_dropped, 20u);
  EXPECT_EQ(transport_.stats().datagrams_sent, 0u);
  driver_.run_for(20 * kMillisecond);
  EXPECT_TRUE(at2_.empty());
}

TEST_F(UdpLoopbackTest, LossShimIsDeterministicPerSeed) {
  // Same seed -> identical drop pattern; count survivors over a fixed
  // batch twice and the receiver totals must match exactly.
  std::array<std::uint64_t, 2> received{};
  for (int round = 0; round < 2; ++round) {
    at2_.clear();
    transport_.set_loss(LossShim{0.5, 1234});
    const std::uint64_t sent_before = transport_.stats().datagrams_sent;
    for (std::uint64_t s = 1; s <= 64; ++s) transport_.send(make(1, 2, s));
    const std::uint64_t survivors =
        transport_.stats().datagrams_sent - sent_before;
    EXPECT_GT(survivors, 0u);
    EXPECT_LT(survivors, 64u);
    ASSERT_TRUE(driver_.run_until_cond(
        [&] { return at2_.size() == survivors; }, kSecond));
    received[static_cast<std::size_t>(round)] = at2_.size();
  }
  EXPECT_EQ(received[0], received[1]);
}

TEST_F(UdpLoopbackTest, BlockedPairsDropBothDirections) {
  transport_.set_blocked(1, 2, true);
  transport_.send(make(1, 2, 1));
  transport_.send(make(2, 1, 1));
  EXPECT_EQ(transport_.stats().shim_blocked, 2u);
  EXPECT_EQ(transport_.stats().datagrams_sent, 0u);

  transport_.set_blocked(2, 1, false);  // normalized: order must not matter
  transport_.send(make(1, 2, 2));
  ASSERT_TRUE(driver_.run_until_cond([&] { return !at2_.empty(); }, kSecond));
  EXPECT_EQ(at2_.front().seq, 2u);
}

TEST(UdpTransportTest, ConstructorRejectsBadMaps) {
  EventLoop loop;
  RealtimeDriver driver(loop);
  EXPECT_THROW(UdpTransport(driver, EndpointMap{}), std::invalid_argument);
  UdpTransport ok(driver, {{1, {"127.0.0.1", 0}}});
  EXPECT_THROW(ok.attach(7, [](const Envelope&) {}), std::invalid_argument);
}

// ---- endpoint map parser ----

TEST(EndpointMapTest, ParsesCommentsBlanksAndEntries) {
  std::istringstream in(
      "# deployment for the loopback demo\n"
      "\n"
      "  1 127.0.0.1:7001\n"
      "2 10.0.0.2:7002\n");
  const auto map = parse_endpoint_map(in);
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->size(), 2u);
  EXPECT_EQ(map->at(1).host, "127.0.0.1");
  EXPECT_EQ(map->at(1).port, 7001);
  EXPECT_EQ(map->at(2).host, "10.0.0.2");
  EXPECT_EQ(map->at(2).port, 7002);
}

TEST(EndpointMapTest, RoundTripsThroughWrite) {
  EndpointMap map{{1, {"127.0.0.1", 7001}}, {5, {"192.0.2.9", 443}}};
  std::ostringstream out;
  write_endpoint_map(out, map);
  std::istringstream in(out.str());
  const auto back = parse_endpoint_map(in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, map);
}

TEST(EndpointMapTest, ErrorsNameTheOffendingLine) {
  const char* bad[] = {
      "1 127.0.0.1\n",          // missing port
      "1 127.0.0.1:notnum\n",   // unparsable port
      "1 127.0.0.1:99999\n",    // port out of range
      "zork 127.0.0.1:1\n",     // unparsable AS
      "1 127.0.0.1:1\n1 127.0.0.1:2\n",  // duplicate AS
      "",                        // empty map
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    const auto map = parse_endpoint_map(in);
    EXPECT_FALSE(map.ok()) << '"' << text << '"';
  }
  std::istringstream in("1 127.0.0.1:1\n1 127.0.0.1:2\n");
  const auto dup = parse_endpoint_map(in);
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.error().to_string().find("line 2"), std::string::npos)
      << dup.error().to_string();
}

}  // namespace
}  // namespace discs

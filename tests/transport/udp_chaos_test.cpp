// Chaos over the REAL transport: the same control-plane life cycle the
// simulated chaos suite pins (peer under loss, re-key across a partition,
// invoke and drain) must also converge when the messages are genuine UDP
// datagrams on loopback, with loss injected deterministically by the
// transport's send-side shim. The sim backend's runs are bit-identical by
// construction; over sockets the wall clock is real, so these trials
// assert convergence invariants instead: full peering and key agreement,
// zero delivery failures, retransmission bounded by the retry cap, no
// unsettled sends, and no orphaned function windows.
//
// Three controllers share one process and one UdpTransport (each attached
// to its own socket), driven by one RealtimeDriver — millisecond RTOs keep
// eight 30%-loss trials comfortably inside a CI time slice.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "control/controller.hpp"
#include "simkit/realtime.hpp"
#include "transport/udp_transport.hpp"

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }

constexpr int kMaxRetries = 12;

/// Three DASes (AS 1..3) on ephemeral loopback ports, 30% deterministic
/// send-side loss. Mirrors the simulated chaos template minus the legacy
/// AS (the socket path has no TLS cost model to exercise).
class UdpChaosWorld {
 public:
  explicit UdpChaosWorld(std::uint64_t loss_seed)
      : rpki_({{pfx("10.0.0.0/8"), {1}},
               {pfx("20.0.0.0/8"), {2}},
               {pfx("30.0.0.0/8"), {3}}}),
        driver_(loop_),
        transport_(driver_,
                   {{1, {"127.0.0.1", 0}},
                    {2, {"127.0.0.1", 0}},
                    {3, {"127.0.0.1", 0}}},
                   LossShim{0.3, loss_seed}) {
    for (AsNumber as : {1u, 2u, 3u}) {
      ControllerConfig config;
      config.as = as;
      config.seed = as * 1000 + 7;
      config.max_peering_delay = 10 * kMillisecond;
      // 30% loss per datagram: a 2 ms initial RTO with 12 transmissions
      // repairs any message within ~a second even on unlucky streaks.
      config.reliability.initial_rto = 2 * kMillisecond;
      config.reliability.max_rto = 50 * kMillisecond;
      config.reliability.max_retries = kMaxRetries;
      controllers_.push_back(
          std::make_unique<Controller>(config, loop_, transport_, rpki_));
    }
    for (auto& a : controllers_) {
      for (auto& b : controllers_) {
        if (a != b) a->discover(b->advertisement());
      }
    }
  }

  ~UdpChaosWorld() {
    for (auto& c : controllers_) c->shutdown();
  }

  Controller& as(AsNumber n) { return *controllers_[n - 1]; }
  const std::vector<std::unique_ptr<Controller>>& controllers() const {
    return controllers_;
  }
  RealtimeDriver& driver() { return driver_; }
  UdpTransport& transport() { return transport_; }

  /// Peered AND both key directions installed for every pair — peer_count
  /// alone can tick over while the reverse-direction KeyInstall is still
  /// in flight on the wire.
  [[nodiscard]] bool fully_peered() const {
    for (const auto& a : controllers_) {
      if (a->peer_count() != controllers_.size() - 1) return false;
      for (const auto& b : controllers_) {
        if (a == b) continue;
        if (!a->tables().key_s.has_key(b->as_number()) ||
            !a->tables().key_v.has_key(b->as_number())) {
          return false;
        }
      }
    }
    return true;
  }

  [[nodiscard]] bool quiescent() const {
    for (const auto& c : controllers_) {
      if (c->link().pending_count() != 0) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t total_windows() const {
    std::size_t n = 0;
    for (const auto& c : controllers_) {
      const RouterTables& t = c->tables();
      n += t.in_src.window_count() + t.in_dst.window_count() +
           t.out_src.window_count() + t.out_dst.window_count();
    }
    return n;
  }

 private:
  InternetDataset rpki_;
  EventLoop loop_;
  RealtimeDriver driver_;
  UdpTransport transport_;
  std::vector<std::unique_ptr<Controller>> controllers_;
};

void expect_pair_key_consistent(Controller& a, Controller& b) {
  ASSERT_TRUE(a.is_peer(b.as_number()))
      << a.as_number() << " does not peer " << b.as_number();
  const auto* stamp = a.tables().key_s.find(b.as_number());
  const auto* verify = b.tables().key_v.find(a.as_number());
  ASSERT_NE(stamp, nullptr);
  ASSERT_NE(verify, nullptr);
  EXPECT_EQ(stamp->active, verify->active)
      << "key_{" << a.as_number() << "," << b.as_number() << "} diverged";
}

void run_udp_chaos_trial(std::uint64_t loss_seed) {
  UdpChaosWorld world(loss_seed);

  // Phase 1: peering converges through 30% real-datagram loss.
  ASSERT_TRUE(world.driver().run_until_cond(
      [&] { return world.fully_peered(); }, 20 * kSecond))
      << "peering never converged";
  for (auto& a : world.controllers()) {
    for (auto& b : world.controllers()) {
      if (a != b) expect_pair_key_consistent(*a, *b);
    }
  }

  // Phase 2: AS 1 re-keys everyone while its path to AS 2 is hard-blocked
  // at the shim — the socket analogue of a FaultPlan partition. The
  // KeyInstall toward AS 2 must survive on retransmissions until the
  // partition heals under the retry budget.
  world.transport().set_blocked(1, 2, true);
  const std::uint64_t before = world.as(1).stats().rekeys_completed;
  world.as(1).rekey_all_peers();
  world.driver().run_for(8 * kMillisecond);  // a few RTOs inside the outage
  world.transport().set_blocked(1, 2, false);
  ASSERT_TRUE(world.driver().run_until_cond(
      [&] { return world.as(1).stats().rekeys_completed >= before + 2; },
      20 * kSecond))
      << "re-key never completed across the partition";
  EXPECT_GT(world.transport().stats().shim_blocked, 0u)
      << "the partition never actually bit";
  for (auto& a : world.controllers()) {
    for (auto& b : world.controllers()) {
      if (a != b) expect_pair_key_consistent(*a, *b);
    }
  }

  // Phase 3: a short invocation window deploys on both peers and expires
  // everywhere — deployed-then-expired, never orphaned.
  ASSERT_EQ(world.as(1).invoke_ddos_defense(pfx("10.1.0.0/16"),
                                            /*spoofed_source=*/false,
                                            100 * kMillisecond),
            2u);
  ASSERT_TRUE(world.driver().run_until_cond(
      [&] {
        return world.as(2).stats().invocations_received >= 1 &&
               world.as(3).stats().invocations_received >= 1;
      },
      20 * kSecond))
      << "invocation never reached both peers";
  ASSERT_TRUE(world.driver().run_until_cond(
      [&] { return world.total_windows() == 0 && world.quiescent(); },
      20 * kSecond))
      << "windows or pending sends never drained";

  // Reliability invariants: the loss really bit, repair stayed within the
  // retry budget, and nothing was abandoned.
  EXPECT_GT(world.transport().stats().shim_dropped, 0u);
  for (const auto& c : world.controllers()) {
    const ReliabilityStats& rs = c->link().stats();
    EXPECT_EQ(rs.delivery_failures, 0u)
        << "AS " << c->as_number() << " abandoned a message";
    EXPECT_LE(rs.retransmits,
              rs.reliable_sends * static_cast<std::uint64_t>(kMaxRetries));
    EXPECT_EQ(c->link().pending_count(), 0u);
  }
  const ReliabilityStats& rs1 = world.as(1).link().stats();
  EXPECT_GT(rs1.retransmits + rs1.duplicates_suppressed, 0u)
      << "30% loss produced no observable repair work";
}

TEST(UdpChaosTest, ConvergesUnderRealDatagramLossAndPartition) {
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    run_udp_chaos_trial(derive_seed(0xdcb5, trial));
  }
}

TEST(UdpChaosTest, LosslessLoopbackConvergesWithoutRepairWork) {
  // Control: no shim loss at all. Loopback UDP essentially never drops,
  // so convergence should involve few (usually zero) retransmissions —
  // pinning that the chaos above is caused by the shim, not the backend.
  UdpChaosWorld world(/*loss_seed=*/1);
  world.transport().set_loss(LossShim{0.0, 1});
  ASSERT_TRUE(world.driver().run_until_cond(
      [&] { return world.fully_peered(); }, 20 * kSecond));
  for (const auto& c : world.controllers()) {
    EXPECT_EQ(c->link().stats().delivery_failures, 0u);
  }
  EXPECT_EQ(world.transport().stats().shim_dropped, 0u);
}

}  // namespace
}  // namespace discs

#include "simkit/event_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace discs {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(30, [&] { order.push_back(3); });
  loop.schedule(10, [&] { order.push_back(1); });
  loop.schedule(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
}

TEST(EventLoopTest, EqualTimestampsFireInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule(7, [&, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  std::vector<SimTime> fire_times;
  std::function<void()> tick = [&] {
    fire_times.push_back(loop.now());
    if (fire_times.size() < 3) loop.schedule(5, tick);
  };
  loop.schedule(5, tick);
  loop.run();
  EXPECT_EQ(fire_times, (std::vector<SimTime>{5, 10, 15}));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  int fired = 0;
  const auto id = loop.schedule(10, [&] { ++fired; });
  loop.schedule(5, [&] { ++fired; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // double cancel
  loop.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, CancelAfterExecutionFails) {
  EventLoop loop;
  const auto id = loop.schedule(1, [] {});
  loop.run();
  EXPECT_FALSE(loop.cancel(id));
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(10, [&] { order.push_back(1); });
  loop.schedule(20, [&] { order.push_back(2); });
  loop.schedule(30, [&] { order.push_back(3); });
  loop.run_until(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 20u);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, RunUntilAdvancesTimeWithoutEvents) {
  EventLoop loop;
  loop.run_until(1000);
  EXPECT_EQ(loop.now(), 1000u);
}

TEST(EventLoopTest, ScheduleAtPastClampsToNow) {
  EventLoop loop;
  loop.run_until(100);
  SimTime fired_at = 0;
  loop.schedule_at(50, [&] { fired_at = loop.now(); });
  loop.run();
  EXPECT_EQ(fired_at, 100u);
}

TEST(EventLoopTest, StepReturnsFalseOnEmpty) {
  EventLoop loop;
  EXPECT_FALSE(loop.step());
  int fired = 0;
  loop.schedule(1, [&] { ++fired; });
  EXPECT_TRUE(loop.step());
  EXPECT_FALSE(loop.step());
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, TimeConstantsAreConsistent) {
  EXPECT_EQ(kSecond, 1000u * kMillisecond);
  EXPECT_EQ(kMinute, 60u * kSecond);
  EXPECT_EQ(kHour, 60u * kMinute);
}

}  // namespace
}  // namespace discs

// RealtimeDriver: EventLoop timers mapped onto the wall clock, interleaved
// with poll()-driven fd readiness. These tests pin the contract the UDP
// transport depends on — timers fire no earlier than scheduled, fd
// callbacks run when data is pending, and EventLoop::next_event_time()
// (which sizes the poll timeout) sees through cancelled tombstones.
#include "simkit/realtime.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>

#include "simkit/event_loop.hpp"

namespace discs {
namespace {

class Pipe {
 public:
  Pipe() { EXPECT_EQ(pipe(fds_.data()), 0); }
  ~Pipe() {
    close(fds_[0]);
    close(fds_[1]);
  }
  [[nodiscard]] int read_fd() const { return fds_[0]; }
  void put(char c) const { EXPECT_EQ(write(fds_[1], &c, 1), 1); }
  [[nodiscard]] char take() const {
    char c = 0;
    EXPECT_EQ(read(fds_[0], &c, 1), 1);
    return c;
  }

 private:
  std::array<int, 2> fds_{-1, -1};
};

TEST(RealtimeDriverTest, TimerFiresNoEarlierThanScheduled) {
  EventLoop loop;
  RealtimeDriver driver(loop);
  bool fired = false;
  loop.schedule(20 * kMillisecond, [&] { fired = true; });

  ASSERT_TRUE(driver.run_until_cond([&] { return fired; }, kSecond));
  EXPECT_GE(driver.elapsed(), 20 * kMillisecond);
  EXPECT_GE(loop.now(), 20 * kMillisecond);
}

TEST(RealtimeDriverTest, TimersFireInScheduleOrder) {
  EventLoop loop;
  RealtimeDriver driver(loop);
  std::vector<int> order;
  loop.schedule(10 * kMillisecond, [&] { order.push_back(2); });
  loop.schedule(5 * kMillisecond, [&] { order.push_back(1); });
  loop.schedule(15 * kMillisecond, [&] { order.push_back(3); });

  ASSERT_TRUE(driver.run_until_cond([&] { return order.size() == 3; },
                                    kSecond));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealtimeDriverTest, ReadableFdDispatchesItsCallback) {
  EventLoop loop;
  RealtimeDriver driver(loop);
  Pipe pipe;
  char got = 0;
  driver.watch_fd(pipe.read_fd(), [&] { got = pipe.take(); });
  EXPECT_EQ(driver.watched_fds(), 1u);

  pipe.put('x');  // readable before the poll loop even starts
  ASSERT_TRUE(driver.run_until_cond([&] { return got != 0; }, kSecond));
  EXPECT_EQ(got, 'x');
}

TEST(RealtimeDriverTest, TimersAndFdsInterleave) {
  EventLoop loop;
  RealtimeDriver driver(loop);
  Pipe pipe;
  int reads = 0;
  driver.watch_fd(pipe.read_fd(), [&] {
    pipe.take();
    ++reads;
  });
  // A timer chain writes into the pipe: timer -> readable -> callback,
  // repeatedly — the exact shape of a retransmit hitting a socket.
  std::function<void(int)> arm = [&](int remaining) {
    if (remaining == 0) return;
    loop.schedule(2 * kMillisecond, [&, remaining] {
      pipe.put('r');
      arm(remaining - 1);
    });
  };
  arm(3);
  ASSERT_TRUE(driver.run_until_cond([&] { return reads == 3; }, kSecond));
}

TEST(RealtimeDriverTest, UnwatchStopsDispatch) {
  EventLoop loop;
  RealtimeDriver driver(loop);
  Pipe pipe;
  int reads = 0;
  driver.watch_fd(pipe.read_fd(), [&] {
    pipe.take();
    ++reads;
  });
  driver.unwatch_fd(pipe.read_fd());
  EXPECT_EQ(driver.watched_fds(), 0u);

  pipe.put('x');
  driver.run_for(20 * kMillisecond);  // nothing should drain the pipe
  EXPECT_EQ(reads, 0);
  EXPECT_EQ(pipe.take(), 'x');  // byte still queued
}

TEST(RealtimeDriverTest, RunUntilCondTimesOutAndReportsFalse) {
  EventLoop loop;
  RealtimeDriver driver(loop);
  const SimTime before = driver.elapsed();
  EXPECT_FALSE(driver.run_until_cond([] { return false; },
                                     30 * kMillisecond));
  EXPECT_GE(driver.elapsed() - before, 30 * kMillisecond);
}

TEST(RealtimeDriverTest, AlreadySatisfiedConditionReturnsImmediately) {
  EventLoop loop;
  RealtimeDriver driver(loop);
  EXPECT_TRUE(driver.run_until_cond([] { return true; }, kHour));
  EXPECT_LT(driver.elapsed(), kSecond);  // did not sleep toward the hour
}

// next_event_time() is the poll-timeout oracle; cancelled events must be
// invisible to it or the driver would wake up for tombstones.
TEST(EventLoopNextEventTest, SeesThroughCancelledTombstones) {
  EventLoop loop;
  EXPECT_FALSE(loop.next_event_time().has_value());

  const auto early = loop.schedule(10 * kMillisecond, [] {});
  loop.schedule(40 * kMillisecond, [] {});
  ASSERT_TRUE(loop.next_event_time().has_value());
  EXPECT_EQ(*loop.next_event_time(), 10 * kMillisecond);

  loop.cancel(early);
  ASSERT_TRUE(loop.next_event_time().has_value());
  EXPECT_EQ(*loop.next_event_time(), 40 * kMillisecond);

  loop.run_until(kSecond);
  EXPECT_FALSE(loop.next_event_time().has_value());
}

}  // namespace
}  // namespace discs

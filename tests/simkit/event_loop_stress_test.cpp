// Randomized stress for the event loop: interleaved schedules and cancels
// must preserve the (time, insertion-order) execution invariant exactly.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "simkit/event_loop.hpp"

namespace discs {
namespace {

class EventLoopStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventLoopStress, ExecutionOrderMatchesSpecification) {
  Xoshiro256 rng(GetParam());
  EventLoop loop;

  struct Expected {
    SimTime when;
    std::uint64_t seq;  // global schedule order
    int tag;
  };
  std::vector<Expected> expected;
  std::vector<int> executed;
  std::map<int, std::uint64_t> ids;
  std::uint64_t seq = 0;

  for (int tag = 0; tag < 500; ++tag) {
    const SimTime when = rng.below(100);
    ids[tag] = loop.schedule_at(when, [&executed, tag] { executed.push_back(tag); });
    expected.push_back({when, seq++, tag});
  }
  // Cancel a random 30%.
  std::vector<int> cancelled;
  for (int tag = 0; tag < 500; ++tag) {
    if (rng.chance(0.3)) {
      EXPECT_TRUE(loop.cancel(ids[tag]));
      cancelled.push_back(tag);
    }
  }
  loop.run();

  std::erase_if(expected, [&](const Expected& e) {
    return std::find(cancelled.begin(), cancelled.end(), e.tag) != cancelled.end();
  });
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) {
                     if (a.when != b.when) return a.when < b.when;
                     return a.seq < b.seq;
                   });
  ASSERT_EQ(executed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(executed[i], expected[i].tag) << i;
  }
  // All cancels of already-run events must now fail.
  for (const auto& [tag, id] : ids) EXPECT_FALSE(loop.cancel(id));
}

TEST_P(EventLoopStress, NestedSchedulingUnderRandomLoad) {
  Xoshiro256 rng(GetParam() ^ 0xbeef);
  EventLoop loop;
  int executions = 0;
  SimTime last_time = 0;
  std::function<void(int)> spawn = [&](int depth) {
    ++executions;
    EXPECT_GE(loop.now(), last_time);  // time is monotone
    last_time = loop.now();
    if (depth <= 0) return;
    const std::size_t children = rng.below(3);
    for (std::size_t c = 0; c < children; ++c) {
      loop.schedule(rng.below(50), [&spawn, depth] { spawn(depth - 1); });
    }
  };
  for (int root = 0; root < 50; ++root) {
    loop.schedule(rng.below(1000), [&spawn] { spawn(4); });
  }
  loop.run();
  EXPECT_GE(executions, 50);
  EXPECT_EQ(loop.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventLoopStress,
                         ::testing::Values(1, 7, 42, 1337));

}  // namespace
}  // namespace discs

// Cross-backend equivalence suite: every available AES backend must agree
// with the byte-wise reference implementation bit-for-bit — on the FIPS-197
// block KAT, the RFC 4493 CMAC KATs, randomized messages of every length
// the CMAC padding logic distinguishes, and the fixed-length / batched fast
// paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "crypto/aes_backend.hpp"
#include "crypto/cmac.hpp"

namespace discs {
namespace {

std::vector<AesBackend> available_backends() {
  std::vector<AesBackend> backends;
  for (AesBackend b :
       {AesBackend::kReference, AesBackend::kTtable, AesBackend::kAesni}) {
    if (aes_backend_available(b)) backends.push_back(b);
  }
  return backends;
}

/// Forces a backend for the duration of a scope, restoring the previous
/// selection on exit — keeps test ordering irrelevant.
class ScopedBackend {
 public:
  explicit ScopedBackend(AesBackend backend) : saved_(aes_backend()) {
    EXPECT_TRUE(set_aes_backend(backend));
  }
  ~ScopedBackend() { set_aes_backend(saved_); }

 private:
  AesBackend saved_;
};

Block128 block(std::initializer_list<unsigned> bytes) {
  Block128 b{};
  std::size_t i = 0;
  for (unsigned v : bytes) b[i++] = static_cast<std::uint8_t>(v);
  return b;
}

const Key128 kRfcKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
const std::array<std::uint8_t, 64> kRfcMsg = {
    0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e,
    0x11, 0x73, 0x93, 0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03,
    0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf, 0x8e, 0x51, 0x30,
    0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb, 0xc1, 0x19,
    0x1a, 0x0a, 0x52, 0xef, 0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b,
    0x17, 0xad, 0x2b, 0x41, 0x7b, 0xe6, 0x6c, 0x37, 0x10};

TEST(AesBackendTest, SelectionRoundTrips) {
  const AesBackend original = aes_backend();
  for (AesBackend b : available_backends()) {
    EXPECT_TRUE(set_aes_backend(b));
    EXPECT_EQ(aes_backend(), b);
  }
  EXPECT_TRUE(set_aes_backend(original));
}

TEST(AesBackendTest, UnavailableBackendIsRejected) {
  if (aes_backend_available(AesBackend::kAesni)) GTEST_SKIP();
  const AesBackend before = aes_backend();
  EXPECT_FALSE(set_aes_backend(AesBackend::kAesni));
  EXPECT_EQ(aes_backend(), before);  // selection unchanged on failure
}

TEST(AesBackendTest, ReferenceAndTtableAlwaysAvailable) {
  EXPECT_TRUE(aes_backend_available(AesBackend::kReference));
  EXPECT_TRUE(aes_backend_available(AesBackend::kTtable));
}

TEST(AesBackendTest, Fips197BlockKatOnEveryBackend) {
  // FIPS-197 appendix C.1.
  Key128 key{};
  Block128 pt{};
  for (unsigned i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(i);
    pt[i] = static_cast<std::uint8_t>((i << 4) | i);  // 00 11 22 ... ff
  }
  const Block128 expected =
      block({0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7,
             0x80, 0x70, 0xb4, 0xc5, 0x5a});
  const Aes128 cipher(key);
  for (AesBackend b : available_backends()) {
    ScopedBackend scope(b);
    EXPECT_EQ(cipher.encrypt(pt), expected) << to_string(b);
  }
}

TEST(AesBackendTest, Rfc4493KatsOnEveryBackend) {
  const AesCmac cmac(kRfcKey);
  const struct {
    std::size_t len;
    Block128 expected;
  } kats[] = {
      {0, block({0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37, 0x28, 0x7f, 0xa3,
                 0x7d, 0x12, 0x9b, 0x75, 0x67, 0x46})},
      {16, block({0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d, 0x41, 0x44, 0xf7, 0x9b,
                  0xdd, 0x9d, 0xd0, 0x4a, 0x28, 0x7c})},
      {40, block({0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a, 0xe6, 0x30, 0x30, 0xca,
                  0x32, 0x61, 0x14, 0x97, 0xc8, 0x27})},
      {64, block({0x51, 0xf0, 0xbe, 0xbf, 0x7e, 0x3b, 0x9d, 0x92, 0xfc, 0x49,
                  0x74, 0x17, 0x79, 0x36, 0x3c, 0xfe})},
  };
  for (AesBackend b : available_backends()) {
    ScopedBackend scope(b);
    for (const auto& kat : kats) {
      EXPECT_EQ(cmac.mac(std::span(kRfcMsg).subspan(0, kat.len)), kat.expected)
          << to_string(b) << " len=" << kat.len;
    }
  }
}

TEST(AesBackendTest, BackendsAgreeOnAllLengths) {
  // Randomized messages of every length 0..64: covers empty, partial-final
  // (K2 path), exact-multiple (K1 path) and the mac21/mac40 dispatch sizes.
  Xoshiro256 rng(0x5eedULL);
  for (std::size_t len = 0; len <= 64; ++len) {
    const AesCmac cmac(derive_key128(rng.next()));
    std::vector<std::uint8_t> msg(len);
    for (auto& byte : msg) byte = static_cast<std::uint8_t>(rng.next());

    Block128 want{};
    {
      ScopedBackend scope(AesBackend::kReference);
      want = cmac.mac(msg);
    }
    for (AesBackend b : available_backends()) {
      ScopedBackend scope(b);
      EXPECT_EQ(cmac.mac(msg), want) << to_string(b) << " len=" << len;
    }
  }
}

TEST(AesBackendTest, FixedLengthFastPathsMatchGeneric) {
  Xoshiro256 rng(0xf00dULL);
  for (int round = 0; round < 32; ++round) {
    const AesCmac cmac(derive_key128(rng.next()));
    std::array<std::uint8_t, 40> buf{};
    for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.next());
    for (AesBackend b : available_backends()) {
      ScopedBackend scope(b);
      EXPECT_EQ(cmac.mac21(std::span(buf).first<21>()),
                cmac.mac(std::span(buf).first(21)))
          << to_string(b);
      EXPECT_EQ(cmac.mac40(std::span(buf)), cmac.mac(buf)) << to_string(b);
    }
  }
}

TEST(AesBackendTest, BatchMatchesSerialOnEveryBackend) {
  // Mixed keys, lengths (21/40/odd sizes incl. 0) and truncation widths in
  // one batch; sizes sweep 0..19 so every partial final wave shape of the
  // 8-lane pipeline is exercised.
  Xoshiro256 rng(0xbadcULL);
  std::vector<AesCmac> keys;
  keys.reserve(4);
  for (int k = 0; k < 4; ++k) keys.emplace_back(derive_key128(rng.next()));

  for (std::size_t n = 0; n <= 19; ++n) {
    std::vector<CmacWork> work(n);
    for (std::size_t i = 0; i < n; ++i) {
      CmacWork& w = work[i];
      w.cmac = &keys[rng.below(keys.size())];
      const std::size_t lens[] = {0, 1, 15, 16, 17, 21, 32, 40};
      w.len = static_cast<std::uint8_t>(lens[rng.below(std::size(lens))]);
      w.bits = static_cast<std::uint8_t>(1 + rng.below(64));
      for (std::size_t j = 0; j < w.len; ++j) {
        w.msg[j] = static_cast<std::uint8_t>(rng.next());
      }
    }
    for (AesBackend b : available_backends()) {
      ScopedBackend scope(b);
      std::vector<CmacWork> copy = work;
      mac_truncated_batch(copy);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t serial = work[i].cmac->mac_truncated(
            std::span(work[i].msg).first(work[i].len), work[i].bits);
        EXPECT_EQ(copy[i].result, serial)
            << to_string(b) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(AesBackendTest, EncryptBatchMatchesSingleBlocks) {
  Xoshiro256 rng(0xc0deULL);
  std::vector<Aes128> ciphers;
  ciphers.reserve(3);
  for (int k = 0; k < 3; ++k) {
    Key128 key{};
    for (auto& byte : key) byte = static_cast<std::uint8_t>(rng.next());
    ciphers.emplace_back(key);
  }
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{24}}) {
    std::vector<Block128> blocks(n);
    std::vector<const Aes128*> which(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& byte : blocks[i]) byte = static_cast<std::uint8_t>(rng.next());
      which[i] = &ciphers[i % ciphers.size()];
    }
    for (AesBackend b : available_backends()) {
      ScopedBackend scope(b);
      std::vector<Block128> batched = blocks;
      std::vector<Block128*> ptrs(n);
      for (std::size_t i = 0; i < n; ++i) ptrs[i] = &batched[i];
      Aes128::encrypt_batch(which.data(), ptrs.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(batched[i], which[i]->encrypt(blocks[i]))
            << to_string(b) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(AesBackendTest, TruncationWidthsClampIntoContract) {
  // The documented contract: bits in [1, 64]; 64 returns the full top word.
  const AesCmac cmac(kRfcKey);
  EXPECT_EQ(cmac.mac_truncated({}, 64), 0xbb1d6929e9593728ull);
  EXPECT_EQ(cmac.mac_truncated({}, 1), 1ull);
  for (unsigned bits = 1; bits <= 64; ++bits) {
    if (bits < 64) {
      EXPECT_LT(cmac.mac_truncated({}, bits), 1ull << bits) << bits;
    }
  }
}

}  // namespace
}  // namespace discs

#include "crypto/cmac.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace discs {
namespace {

Block128 block(std::initializer_list<unsigned> bytes) {
  Block128 b{};
  std::size_t i = 0;
  for (unsigned v : bytes) b[i++] = static_cast<std::uint8_t>(v);
  return b;
}

// RFC 4493 test vectors all use this key and message prefix.
const Key128 kRfcKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
const std::array<std::uint8_t, 64> kRfcMsg = {
    0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e,
    0x11, 0x73, 0x93, 0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03,
    0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf, 0x8e, 0x51, 0x30,
    0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb, 0xc1, 0x19,
    0x1a, 0x0a, 0x52, 0xef, 0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b,
    0x17, 0xad, 0x2b, 0x41, 0x7b, 0xe6, 0x6c, 0x37, 0x10};

TEST(AesCmacTest, Rfc4493EmptyMessage) {
  const AesCmac cmac(kRfcKey);
  EXPECT_EQ(cmac.mac({}),
            block({0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37, 0x28, 0x7f, 0xa3,
                   0x7d, 0x12, 0x9b, 0x75, 0x67, 0x46}));
}

TEST(AesCmacTest, Rfc4493SixteenBytes) {
  const AesCmac cmac(kRfcKey);
  EXPECT_EQ(cmac.mac(std::span(kRfcMsg).subspan(0, 16)),
            block({0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d, 0x41, 0x44, 0xf7, 0x9b,
                   0xdd, 0x9d, 0xd0, 0x4a, 0x28, 0x7c}));
}

TEST(AesCmacTest, Rfc4493FortyBytes) {
  const AesCmac cmac(kRfcKey);
  EXPECT_EQ(cmac.mac(std::span(kRfcMsg).subspan(0, 40)),
            block({0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a, 0xe6, 0x30, 0x30, 0xca,
                   0x32, 0x61, 0x14, 0x97, 0xc8, 0x27}));
}

TEST(AesCmacTest, Rfc4493SixtyFourBytes) {
  const AesCmac cmac(kRfcKey);
  EXPECT_EQ(cmac.mac(kRfcMsg),
            block({0x51, 0xf0, 0xbe, 0xbf, 0x7e, 0x3b, 0x9d, 0x92, 0xfc, 0x49,
                   0x74, 0x17, 0x79, 0x36, 0x3c, 0xfe}));
}

TEST(AesCmacTest, TruncationTakesMostSignificantBits) {
  const AesCmac cmac(kRfcKey);
  // Full MAC for the empty message begins 0xbb1d6929 e9593728...
  // Top 29 bits of 0xbb1d6929...: 0xbb1d6929e9593728 >> 35.
  EXPECT_EQ(cmac.mac_truncated({}, 29), 0xbb1d6929e9593728ull >> 35);
  EXPECT_EQ(cmac.mac_truncated({}, 32), 0xbb1d6929ull);
  EXPECT_EQ(cmac.mac_truncated({}, 1), 1ull);
  EXPECT_EQ(cmac.mac_truncated({}, 64), 0xbb1d6929e9593728ull);
}

TEST(AesCmacTest, TruncatedMarksFitWidth) {
  const AesCmac cmac(derive_key128(77));
  std::vector<std::uint8_t> msg(21);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = std::uint8_t(i);
  EXPECT_LT(cmac.mac_truncated(msg, kIpv4MarkBits), 1ull << kIpv4MarkBits);
  EXPECT_LT(cmac.mac_truncated(msg, kIpv6MarkBits), 1ull << kIpv6MarkBits);
}

TEST(AesCmacTest, DifferentKeysProduceDifferentMacs) {
  std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
  EXPECT_NE(AesCmac(derive_key128(1)).mac(msg),
            AesCmac(derive_key128(2)).mac(msg));
}

TEST(AesCmacTest, MessageSensitivity) {
  const AesCmac cmac(derive_key128(9));
  std::vector<std::uint8_t> a(21, 0), b(21, 0);
  b[20] = 1;  // single trailing byte differs
  EXPECT_NE(cmac.mac(a), cmac.mac(b));
  // Length extension with zero bytes must also change the MAC.
  std::vector<std::uint8_t> c(22, 0);
  EXPECT_NE(cmac.mac(a), cmac.mac(c));
}

TEST(DeriveKey128Test, DeterministicAndSeedSensitive) {
  EXPECT_EQ(derive_key128(5), derive_key128(5));
  EXPECT_NE(derive_key128(5), derive_key128(6));
}

}  // namespace
}  // namespace discs

// SPM data-plane tests + the head-to-head replay experiment backing the
// paper's "SPM ... loses security" claim (§II) and DISCS's §VI-E2 analysis.
#include "baselines/spm.hpp"

#include <gtest/gtest.h>

#include "dataplane/stamp.hpp"

namespace discs {
namespace {

constexpr AsNumber kSrcAs = 100;
constexpr AsNumber kDstAs = 200;

Ipv4Packet make_packet(std::uint8_t tag) {
  return Ipv4Packet::make(*Ipv4Address::parse("10.0.0.1"),
                          *Ipv4Address::parse("20.0.0.9"), IpProto::kUdp,
                          {tag, 2, 3, 4, 5, 6, 7, 8});
}

TEST(SpmTest, StampVerifyRoundTrip) {
  SpmEndpoint src(kSrcAs), dst(kDstAs);
  src.set_stamp_mark(kDstAs, 0x1234567);
  dst.set_verify_mark(kSrcAs, 0x1234567);

  auto packet = make_packet(1);
  ASSERT_TRUE(src.stamp(packet, kDstAs));
  EXPECT_TRUE(packet.checksum_valid());
  EXPECT_TRUE(dst.verify(packet, kSrcAs));
}

TEST(SpmTest, WrongMarkRejected) {
  SpmEndpoint dst(kDstAs);
  dst.set_verify_mark(kSrcAs, 0x1234567);
  auto packet = make_packet(1);  // unstamped
  EXPECT_FALSE(dst.verify(packet, kSrcAs));
}

TEST(SpmTest, UnknownPairPassesLikeCdp) {
  SpmEndpoint dst(kDstAs);
  auto packet = make_packet(1);
  EXPECT_TRUE(dst.verify(packet, 999));
}

TEST(SpmTest, StampWithoutKeyFails) {
  SpmEndpoint src(kSrcAs);
  auto packet = make_packet(1);
  EXPECT_FALSE(src.stamp(packet, kDstAs));
}

// The decisive experiment: capture one marked packet, then forge new
// packets with different contents carrying the captured mark.
TEST(SpmVsDiscsTest, CapturedMarkReplaysAgainstSpmButNotDiscs) {
  // --- SPM side ---
  SpmEndpoint spm_src(kSrcAs), spm_dst(kDstAs);
  spm_src.set_stamp_mark(kDstAs, 0x0abcdef);
  spm_dst.set_verify_mark(kSrcAs, 0x0abcdef);
  auto observed_spm = make_packet(1);
  ASSERT_TRUE(spm_src.stamp(observed_spm, kDstAs));
  const std::uint32_t captured_spm = spm_read_mark(observed_spm);

  // --- DISCS side ---
  const AesCmac mac(derive_key128(7));
  auto observed_discs = make_packet(1);
  ipv4_stamp(observed_discs, mac);
  const std::uint32_t captured_discs = ipv4_read_mark(observed_discs);

  Xoshiro256 rng(3);
  int spm_accepted = 0, discs_accepted = 0;
  for (std::uint8_t tag = 10; tag < 110; ++tag) {
    auto forged_spm = make_packet(tag);  // different payload every time
    forged_spm.header.identification = static_cast<std::uint16_t>(captured_spm >> 13);
    forged_spm.header.fragment_offset =
        static_cast<std::uint16_t>(captured_spm & 0x1fff);
    forged_spm.header.refresh_checksum();
    spm_accepted += spm_dst.verify(forged_spm, kSrcAs);

    auto forged_discs = make_packet(tag);
    forged_discs.header.identification =
        static_cast<std::uint16_t>(captured_discs >> 13);
    forged_discs.header.fragment_offset =
        static_cast<std::uint16_t>(captured_discs & 0x1fff);
    forged_discs.header.refresh_checksum();
    discs_accepted +=
        ipv4_verify(forged_discs, mac, nullptr, rng) == VerifyResult::kValid;
  }
  // Every forgery sails through SPM; none through DISCS.
  EXPECT_EQ(spm_accepted, 100);
  EXPECT_EQ(discs_accepted, 0);
}

TEST(SpmVsDiscsTest, DiscsMarkChangesPerPacketSpmDoesNot) {
  SpmEndpoint spm_src(kSrcAs);
  spm_src.set_stamp_mark(kDstAs, 0x0abcdef);
  const AesCmac mac(derive_key128(7));

  auto a = make_packet(1);
  auto b = make_packet(2);
  ASSERT_TRUE(spm_src.stamp(a, kDstAs));
  ASSERT_TRUE(spm_src.stamp(b, kDstAs));
  EXPECT_EQ(spm_read_mark(a), spm_read_mark(b));  // deterministic

  auto c = make_packet(1);
  auto d = make_packet(2);
  ipv4_stamp(c, mac);
  ipv4_stamp(d, mac);
  EXPECT_NE(ipv4_read_mark(c), ipv4_read_mark(d));  // content-bound
}

}  // namespace
}  // namespace discs

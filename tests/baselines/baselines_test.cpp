#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace discs {
namespace {

const std::unordered_set<AsNumber> kDeployed{1, 2, 3};

SpoofFlow direct(AsNumber a, AsNumber i, AsNumber v) {
  return {a, i, v, AttackType::kDirect};
}
SpoofFlow reflection(AsNumber a, AsNumber i, AsNumber v) {
  return {a, i, v, AttackType::kReflection};
}

TEST(MethodFilterTest, IngressFilteringOnlyNeedsTheAgentAs) {
  EXPECT_TRUE(method_filters_flow(Method::kIngressFiltering, direct(1, 9, 8),
                                  kDeployed));
  EXPECT_FALSE(method_filters_flow(Method::kIngressFiltering, direct(9, 1, 8),
                                   kDeployed));
  // Self-spoofing evades IF.
  EXPECT_FALSE(method_filters_flow(Method::kIngressFiltering, direct(1, 1, 8),
                                   kDeployed));
  // Works regardless of attack direction.
  EXPECT_TRUE(method_filters_flow(Method::kIngressFiltering,
                                  reflection(1, 9, 8), kDeployed));
}

TEST(MethodFilterTest, SpmProtectsOnlyDirectAttacks) {
  // d-DDoS with victim and innocent deployed: filtered (e2e leg).
  EXPECT_TRUE(method_filters_flow(Method::kSpm, direct(9, 1, 2), kDeployed));
  // Same roles as s-DDoS: SPM gives no protection.
  EXPECT_FALSE(method_filters_flow(Method::kSpm, reflection(9, 1, 2), kDeployed));
  // Victim not deployed, agent not deployed: nothing fires.
  EXPECT_FALSE(method_filters_flow(Method::kSpm, direct(9, 1, 8), kDeployed));
}

TEST(MethodFilterTest, MefNeedsVictimCollaboration) {
  // Victim deployed + agent deployed: egress filtering fires on demand.
  EXPECT_TRUE(method_filters_flow(Method::kMef, direct(1, 9, 2), kDeployed));
  // Victim deployed but agent is a legacy AS: nothing (no e2e leg in MEF).
  EXPECT_FALSE(method_filters_flow(Method::kMef, direct(9, 1, 2), kDeployed));
  // Victim not deployed: no invocation happens at all.
  EXPECT_FALSE(method_filters_flow(Method::kMef, direct(1, 9, 8), kDeployed));
}

TEST(MethodFilterTest, DiscsCoversBothLegsAndBothDirections) {
  // Always-on Fig. 7 semantics: the egress leg fires at any deployed agent
  // AS; the e2e leg needs victim + innocent deployed.
  EXPECT_TRUE(method_filters_flow(Method::kDiscs, direct(1, 9, 2), kDeployed));
  EXPECT_TRUE(method_filters_flow(Method::kDiscs, direct(9, 1, 2), kDeployed));
  EXPECT_TRUE(method_filters_flow(Method::kDiscs, direct(1, 9, 8), kDeployed));
  EXPECT_FALSE(method_filters_flow(Method::kDiscs, direct(9, 1, 8), kDeployed));
  EXPECT_TRUE(method_filters_flow(Method::kDiscs, reflection(9, 1, 2), kDeployed));
  // DISCS is never weaker than IF or SPM on any flow.
  for (const auto& flow :
       {direct(1, 9, 2), direct(9, 1, 2), direct(1, 9, 8), direct(9, 1, 8),
        reflection(1, 9, 2), reflection(9, 1, 2)}) {
    EXPECT_GE(method_filters_flow(Method::kDiscs, flow, kDeployed),
              method_filters_flow(Method::kIngressFiltering, flow, kDeployed));
    EXPECT_GE(method_filters_flow(Method::kDiscs, flow, kDeployed),
              method_filters_flow(Method::kSpm, flow, kDeployed));
  }
}

TEST(MethodIncentiveTest, QualitativeOrderingFromThePaper) {
  const double s1 = 0.4, s2 = 0.01, mean_rv = 0.001;
  // IF/uRPF have no deployment incentive; that is the paper's motivation.
  EXPECT_DOUBLE_EQ(method_incentive(Method::kIngressFiltering, s1, s2, mean_rv, false), 0.0);
  EXPECT_DOUBLE_EQ(method_incentive(Method::kUrpf, s1, s2, mean_rv, false), 0.0);
  // SPM/Passport match DISCS against d-DDoS but collapse against s-DDoS.
  EXPECT_GT(method_incentive(Method::kSpm, s1, s2, mean_rv, false), 0.0);
  EXPECT_DOUBLE_EQ(method_incentive(Method::kSpm, s1, s2, mean_rv, true), 0.0);
  EXPECT_DOUBLE_EQ(
      method_incentive(Method::kDiscs, s1, s2, mean_rv, true),
      method_incentive(Method::kDiscs, s1, s2, mean_rv, false));
  // DISCS >= MEF >= 0 in both directions.
  EXPECT_GE(method_incentive(Method::kDiscs, s1, s2, mean_rv, true),
            method_incentive(Method::kMef, s1, s2, mean_rv, true));
  EXPECT_GT(method_incentive(Method::kMef, s1, s2, mean_rv, true), 0.0);
}

TEST(MethodCostTest, PassportStampsPerHopDiscsOnce) {
  EXPECT_DOUBLE_EQ(marks_per_packet(Method::kDiscs, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(marks_per_packet(Method::kSpm, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(marks_per_packet(Method::kPassport, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(marks_per_packet(Method::kIngressFiltering, 4.0), 0.0);
}

TEST(MethodCostTest, OnDemandAndCentralizationFlags) {
  EXPECT_FALSE(always_on(Method::kDiscs));
  EXPECT_FALSE(always_on(Method::kMef));
  EXPECT_TRUE(always_on(Method::kSpm));
  EXPECT_TRUE(always_on(Method::kUrpf));
  EXPECT_TRUE(requires_central_server(Method::kMef));
  EXPECT_FALSE(requires_central_server(Method::kDiscs));
}

// uRPF on the reference topology (same as graph tests):
//
//        1 ===== 2
//       / \       \ .
//      3   4       5
//     /     \     / \ .
//    6       7 = 8   9
AsGraph reference_graph() {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_provider(3, 1);
  g.add_provider(4, 1);
  g.add_provider(5, 2);
  g.add_provider(6, 3);
  g.add_provider(7, 4);
  g.add_provider(8, 5);
  g.add_provider(9, 5);
  g.add_peering(7, 8);
  return g;
}

TEST(UrpfTest, DropsSpoofAtFirstDeployedHop) {
  const auto g = reference_graph();
  UrpfEvaluator urpf(g);
  // Agent in 6 spoofs 9's space toward 7; first hop 3 deploys uRPF. 3's
  // route toward 9 goes up to 1, not down to 6 -> drop.
  EXPECT_TRUE(urpf.filters_flow(direct(6, 9, 7), {3}));
  // Without any deployer on the path the spoof sails through.
  EXPECT_FALSE(urpf.filters_flow(direct(6, 9, 7), {5, 8}));
}

TEST(UrpfTest, AcceptsGenuineSymmetricTraffic) {
  const auto g = reference_graph();
  UrpfEvaluator urpf(g);
  // 6 -> 9 genuine: hierarchical up-down path is symmetric here.
  EXPECT_FALSE(urpf.false_positive(6, 9, {3, 1, 2, 5}));
}

TEST(UrpfTest, FalsePositiveUnderRouteAsymmetry) {
  // Multihoming diamond where the deterministic lowest-ASN tie-break picks
  // different transit ASes per direction:
  //
  //    10 === 21        S (5) buys from 10 and 20; D (30) buys from 11/21;
  //    20 === 11        peerings 10=21 and 20=11.
  //
  // Forward S->D resolves to 5-10-21-30 (tie-break at S picks 10); reverse
  // D->S resolves to 30-11-20-5 (tie-break at D picks 11). A genuine packet
  // from S therefore reaches D from neighbor 21 while D's best route back
  // to S points at 11 -> strict uRPF at D drops legitimate traffic.
  AsGraph g;
  g.add_provider(5, 10);
  g.add_provider(5, 20);
  g.add_provider(30, 11);
  g.add_provider(30, 21);
  g.add_peering(10, 21);
  g.add_peering(20, 11);
  ASSERT_EQ(g.path(5, 30), (std::vector<AsNumber>{5, 10, 21, 30}));
  ASSERT_EQ(g.path(30, 5), (std::vector<AsNumber>{30, 11, 20, 5}));

  UrpfEvaluator urpf(g);
  EXPECT_TRUE(urpf.false_positive(5, 30, {30}));
  // The same deployment still accepts traffic on the symmetric leg.
  EXPECT_FALSE(urpf.false_positive(21, 30, {30}));
}

TEST(UrpfTest, MeasurableFalsePositiveRateOnGeneratedTopology) {
  std::vector<AsNumber> order(300);
  std::iota(order.begin(), order.end(), 1);
  GraphConfig cfg;
  cfg.extra_peering_fraction = 0.5;  // plenty of lateral links
  const auto g = generate_graph(order, cfg);
  UrpfEvaluator urpf(g);
  std::unordered_set<AsNumber> all;
  for (AsNumber as = 1; as <= 300; ++as) all.insert(as);
  const double fp = urpf.false_positive_rate(all, 2000, 77);
  // The paper's point: prevalent route asymmetry makes strict uRPF drop
  // genuine packets. We only require the effect to be measurable.
  EXPECT_GT(fp, 0.0);
  EXPECT_LT(fp, 0.9);
}

TEST(UrpfTest, ReflectionFlowsUseReflectorAsDestination) {
  const auto g = reference_graph();
  UrpfEvaluator urpf(g);
  // s-DDoS: agent 6 sends toward reflector 9 claiming victim 7's space.
  // Deployed 3 (on the 6 -> 9 path) checks the route back to 7 (via 1/4),
  // which does not point down to 6 -> drop.
  EXPECT_TRUE(urpf.filters_flow(reflection(6, 9, 7), {3}));
}

TEST(UrpfTest, FeasibleModeAcceptsTheStrictFalsePositive) {
  // Same diamond as FalsePositiveUnderRouteAsymmetry: the 21 -> D arrival
  // is a legitimate alternative path, so feasible-path uRPF accepts it
  // while strict uRPF drops it (RFC 3704's motivation).
  AsGraph g;
  g.add_provider(5, 10);
  g.add_provider(5, 20);
  g.add_provider(30, 11);
  g.add_provider(30, 21);
  g.add_peering(10, 21);
  g.add_peering(20, 11);
  UrpfEvaluator strict(g, UrpfMode::kStrict);
  UrpfEvaluator feasible(g, UrpfMode::kFeasible);
  EXPECT_TRUE(strict.false_positive(5, 30, {30}));
  EXPECT_FALSE(feasible.false_positive(5, 30, {30}));
}

TEST(UrpfTest, FeasibleModeStillDropsClearSpoofs) {
  const auto g = reference_graph();
  UrpfEvaluator feasible(g, UrpfMode::kFeasible);
  // Agent in 6 spoofs 9's space toward 7: the packet climbs 6 -> 3, but 6
  // never announced a route for 9's space to 3 (6 cannot reach 9 via a
  // customer route and 3 is not 6's customer) -> dropped at 3.
  EXPECT_TRUE(feasible.filters_flow(direct(6, 9, 7), {3}));
}

TEST(UrpfTest, FeasibleFpRateNotAboveStrict) {
  std::vector<AsNumber> order(300);
  std::iota(order.begin(), order.end(), 1);
  GraphConfig cfg;
  cfg.extra_peering_fraction = 0.5;
  const auto g = generate_graph(order, cfg);
  UrpfEvaluator strict(g, UrpfMode::kStrict);
  UrpfEvaluator feasible(g, UrpfMode::kFeasible);
  std::unordered_set<AsNumber> all;
  for (AsNumber as = 1; as <= 300; ++as) all.insert(as);
  const double fp_strict = strict.false_positive_rate(all, 2000, 77);
  const double fp_feasible = feasible.false_positive_rate(all, 2000, 77);
  EXPECT_LE(fp_feasible, fp_strict);
  EXPECT_LT(fp_feasible, 0.5 * fp_strict + 1e-9);  // materially better
}

TEST(MethodNameTest, AllNamesDistinct) {
  std::unordered_set<std::string> names;
  for (Method m : {Method::kDiscs, Method::kIngressFiltering, Method::kUrpf,
                   Method::kSpm, Method::kPassport, Method::kMef}) {
    names.insert(method_name(m));
  }
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace discs

#include "baselines/stackpi.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace discs {
namespace {

// Reference topology (see graph tests):
//        1 ===== 2
//       / \       \ .
//      3   4       5
//     /     \     / \ .
//    6       7 = 8   9
AsGraph reference_graph() {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_provider(3, 1);
  g.add_provider(4, 1);
  g.add_provider(5, 2);
  g.add_provider(6, 3);
  g.add_provider(7, 4);
  g.add_provider(8, 5);
  g.add_provider(9, 5);
  g.add_peering(7, 8);
  return g;
}

std::unordered_set<AsNumber> all_deployed() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9};
}

TEST(StackPiTest, StacksAreDeterministicAndPathDependent) {
  const auto g = reference_graph();
  const auto deployed = all_deployed();
  const auto a = StackPiEvaluator::stack_for_path(g, 6, 9, deployed);
  const auto b = StackPiEvaluator::stack_for_path(g, 6, 9, deployed);
  EXPECT_EQ(a, b);
  // A different route leaves a different trail (paths 6->9 and 7->9 differ).
  const auto c = StackPiEvaluator::stack_for_path(g, 7, 9, deployed);
  EXPECT_NE(a, c);
}

TEST(StackPiTest, DetectsSpoofsFromDifferentPaths) {
  const auto g = reference_graph();
  StackPiEvaluator pi(g);
  const auto deployed = all_deployed();
  // Agent in 8 spoofs 6's space toward 9: 8's trail (8-5-9) differs from
  // 6's learned trail (6-3-1-2-5-9).
  EXPECT_TRUE(pi.filters_flow({8, 6, 9, AttackType::kDirect}, deployed, g));
}

TEST(StackPiTest, SharedPathSuffixEvades) {
  const auto g = reference_graph();
  StackPiEvaluator pi(g);
  const auto deployed = all_deployed();
  // 8 and 9 share the suffix via 5 toward tier-1 destinations; if their
  // full 16-bit stacks toward 6 coincide the spoof is invisible. Assert the
  // evaluator's decision matches raw stack equality (no hidden extras).
  const auto s8 = StackPiEvaluator::stack_for_path(g, 8, 6, deployed);
  const auto s9 = pi.learned_stack(9, 6, deployed);
  EXPECT_EQ(pi.filters_flow({8, 9, 6, AttackType::kDirect}, deployed, g),
            s8 != s9);
}

TEST(StackPiTest, PartialDeploymentWeakensTheSignal) {
  const auto g = reference_graph();
  const std::unordered_set<AsNumber> sparse{9};  // only the victim marks... nothing en route
  // With no marking routers en route, every stack is 0: all spoofs pass.
  StackPiEvaluator pi(g);
  EXPECT_FALSE(pi.filters_flow({8, 6, 9, AttackType::kDirect}, sparse, g));
}

TEST(StackPiTest, RouteChangeFalsePositive) {
  const auto learned = reference_graph();
  StackPiEvaluator pi(learned);
  const auto deployed = all_deployed();
  AsGraph changed = reference_graph();
  changed.add_provider(6, 5);  // 6 multihomes after learning
  ASSERT_NE(changed.path(6, 9), learned.path(6, 9));
  EXPECT_TRUE(pi.false_positive(6, 9, deployed, changed));
  EXPECT_FALSE(pi.false_positive(6, 9, deployed, learned));
}

TEST(StackPiTest, UndeployedDestinationCannotJudge) {
  const auto g = reference_graph();
  StackPiEvaluator pi(g);
  EXPECT_FALSE(pi.filters_flow({8, 6, 9, AttackType::kDirect}, {1, 2, 5}, g));
}

TEST(StackPiTest, DetectionRateBeatsHcfStyleDistanceOnly) {
  // Pi's stacks distinguish many equidistant paths; measure detection at
  // full deployment on a generated topology.
  std::vector<AsNumber> order(200);
  std::iota(order.begin(), order.end(), 1);
  const auto g = generate_graph(order, GraphConfig{});
  StackPiEvaluator pi(g);
  std::unordered_set<AsNumber> all;
  for (AsNumber as = 1; as <= 200; ++as) all.insert(as);

  Xoshiro256 rng(5);
  std::size_t filtered = 0, total = 0;
  for (int k = 0; k < 2000; ++k) {
    SpoofFlow flow;
    flow.agent = 1 + static_cast<AsNumber>(rng.below(200));
    flow.innocent = 1 + static_cast<AsNumber>(rng.below(200));
    flow.victim = 1 + static_cast<AsNumber>(rng.below(200));
    flow.type = AttackType::kDirect;
    if (flow.agent == flow.victim || flow.agent == flow.innocent ||
        flow.innocent == flow.victim) {
      continue;
    }
    ++total;
    filtered += pi.filters_flow(flow, all, g);
  }
  const double rate = double(filtered) / double(total);
  EXPECT_GT(rate, 0.5);
  EXPECT_LT(rate, 1.0);  // shared suffixes still evade
}

}  // namespace
}  // namespace discs

#include "baselines/hcf.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace discs {
namespace {

// Reference topology (see graph tests):
//        1 ===== 2
//       / \       \ .
//      3   4       5
//     /     \     / \ .
//    6       7 = 8   9
AsGraph reference_graph() {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_provider(3, 1);
  g.add_provider(4, 1);
  g.add_provider(5, 2);
  g.add_provider(6, 3);
  g.add_provider(7, 4);
  g.add_provider(8, 5);
  g.add_provider(9, 5);
  g.add_peering(7, 8);
  return g;
}

TEST(HcfTest, LearnedDistancesMatchPaths) {
  const auto g = reference_graph();
  HcfEvaluator hcf(g);
  EXPECT_EQ(hcf.learned_distance(6, 9), 5u);  // 6-3-1-2-5-9
  EXPECT_EQ(hcf.learned_distance(7, 8), 1u);  // peering shortcut
  EXPECT_EQ(hcf.learned_distance(9, 9), 0u);
}

TEST(HcfTest, DetectsDistanceMismatchSpoofs) {
  const auto g = reference_graph();
  HcfEvaluator hcf(g);
  const std::unordered_set<AsNumber> deployed{7};
  // Agent in 8 (distance 1 from 7) spoofs 9 (distance 5 from 7): mismatch.
  EXPECT_TRUE(hcf.filters_flow({8, 9, 7, AttackType::kDirect}, deployed, g));
}

TEST(HcfTest, MissesEquidistantSpoofs) {
  const auto g = reference_graph();
  HcfEvaluator hcf(g);
  const std::unordered_set<AsNumber> deployed{7};
  // 6 and 9 are both 5 hops from 7 (6-3-1-4-7 is 4... compute honestly):
  const auto d6 = hcf.learned_distance(6, 7);
  const auto d9 = hcf.learned_distance(9, 7);
  const SpoofFlow flow{9, 6, 7, AttackType::kDirect};
  EXPECT_EQ(hcf.filters_flow(flow, deployed, g), d6 != d9);
}

TEST(HcfTest, OnlyDeployedDestinationsJudge) {
  const auto g = reference_graph();
  HcfEvaluator hcf(g);
  EXPECT_FALSE(hcf.filters_flow({8, 9, 7, AttackType::kDirect}, {3}, g));
}

TEST(HcfTest, ReflectionUsesReflectorAsJudge) {
  const auto g = reference_graph();
  HcfEvaluator hcf(g);
  // s-DDoS: agent 8 sends to reflector 7 claiming victim 9's space; 7
  // deployed HCF and knows 9's distance differs from 8's.
  EXPECT_TRUE(
      hcf.filters_flow({8, 7, 9, AttackType::kReflection}, {7}, g));
}

TEST(HcfTest, RouteChangeCausesFalsePositive) {
  const auto learned = reference_graph();
  HcfEvaluator hcf(learned);
  // After learning, 6 multihomes to 5: its path to 9 shortens to 6-5-9.
  AsGraph changed = reference_graph();
  changed.add_provider(6, 5);
  ASSERT_NE(changed.path(6, 9).size(), learned.path(6, 9).size());
  EXPECT_TRUE(hcf.false_positive(6, 9, {9}, changed));
  // With the stable topology there is no FP.
  EXPECT_FALSE(hcf.false_positive(6, 9, {9}, learned));
}

TEST(HcfTest, ToleranceTradesDetectionForFp) {
  const auto learned = reference_graph();
  AsGraph changed = reference_graph();
  changed.add_provider(6, 5);
  const std::size_t gap = learned.path(6, 9).size() - changed.path(6, 9).size();

  HcfEvaluator tolerant(learned, /*tolerance=*/static_cast<unsigned>(gap));
  EXPECT_FALSE(tolerant.false_positive(6, 9, {9}, changed));
  // But the same tolerance now forgives spoofs whose distance gap is small.
  HcfEvaluator strict(learned, 0);
  const SpoofFlow near_spoof{8, 9, 7, AttackType::kDirect};
  const auto d_agent = strict.learned_distance(8, 7);
  const auto d_claim = strict.learned_distance(9, 7);
  const auto spoof_gap = d_claim > d_agent ? d_claim - d_agent : d_agent - d_claim;
  if (spoof_gap <= gap) {
    EXPECT_FALSE(tolerant.filters_flow(near_spoof, {7}, learned));
    EXPECT_TRUE(strict.filters_flow(near_spoof, {7}, learned));
  }
}

TEST(HcfTest, GeneratedTopologyDetectionRate) {
  std::vector<AsNumber> order(200);
  std::iota(order.begin(), order.end(), 1);
  const auto g = generate_graph(order, GraphConfig{});
  HcfEvaluator hcf(g);
  std::unordered_set<AsNumber> all;
  for (AsNumber as = 1; as <= 200; ++as) all.insert(as);

  Xoshiro256 rng(5);
  std::size_t filtered = 0, total = 0;
  for (int k = 0; k < 2000; ++k) {
    SpoofFlow flow;
    flow.agent = 1 + static_cast<AsNumber>(rng.below(200));
    flow.innocent = 1 + static_cast<AsNumber>(rng.below(200));
    flow.victim = 1 + static_cast<AsNumber>(rng.below(200));
    flow.type = AttackType::kDirect;
    if (flow.agent == flow.victim || flow.agent == flow.innocent ||
        flow.innocent == flow.victim) {
      continue;
    }
    ++total;
    filtered += hcf.filters_flow(flow, all, g);
  }
  const double rate = double(filtered) / double(total);
  // HCF catches a chunk of spoofs but misses equidistant agents — it must
  // be clearly imperfect even at full deployment (unlike DISCS's e2e leg).
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.95);
}

}  // namespace
}  // namespace discs

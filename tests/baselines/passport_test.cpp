// Passport data-plane tests and the DISCS-vs-Passport cost contrast.
#include "baselines/passport.hpp"

#include <gtest/gtest.h>

#include "dataplane/stamp.hpp"

namespace discs {
namespace {

// Path: source AS 1 -> transit 2 -> transit 3 -> destination 4.
constexpr AsNumber kSrc = 1;
const std::vector<AsNumber> kPath{1, 2, 3, 4};

Ipv4Packet make_packet(std::uint8_t tag = 0) {
  return Ipv4Packet::make(*Ipv4Address::parse("10.0.0.1"),
                          *Ipv4Address::parse("40.0.0.9"), IpProto::kUdp,
                          {tag, 1, 2, 3, 4, 5, 6, 7});
}

struct Mesh {
  PassportEndpoint e1{1}, e2{2}, e3{3}, e4{4};
  Mesh() {
    // Pairwise keys between the source and everyone en route.
    for (auto* other : {&e2, &e3, &e4}) {
      const Key128 key = derive_key128(100 + other->local_as());
      e1.set_key(other->local_as(), key);
      other->set_key(1, key);
    }
  }
};

TEST(PassportTest, StampsOneMacPerDasEnRoute) {
  Mesh mesh;
  PassportPacket pp{make_packet(), {}};
  EXPECT_EQ(mesh.e1.stamp(pp, kPath), 3u);  // ASes 2, 3, 4
  EXPECT_EQ(pp.shim.size(), 3u);
  EXPECT_EQ(pp.shim_bytes(), 2u + 3u * 12u);
}

TEST(PassportTest, EveryHopVerifiesAndConsumesItsSlot) {
  Mesh mesh;
  PassportPacket pp{make_packet(), {}};
  mesh.e1.stamp(pp, kPath);
  EXPECT_EQ(mesh.e2.verify(pp, kSrc), PassportVerdict::kValid);
  EXPECT_EQ(mesh.e3.verify(pp, kSrc), PassportVerdict::kValid);
  EXPECT_EQ(mesh.e4.verify(pp, kSrc), PassportVerdict::kValid);
  // Slots are consumed: a second pass finds nothing.
  EXPECT_EQ(mesh.e2.verify(pp, kSrc), PassportVerdict::kNoSlot);
}

TEST(PassportTest, SpoofedPacketHasNoValidSlots) {
  Mesh mesh;
  // Attacker in a legacy AS forges src in AS 1's space but holds no keys:
  // it cannot produce slots, so DASes see kNoSlot (demote, not drop — the
  // legacy-compatibility behaviour Passport specifies).
  PassportPacket forged{make_packet(7), {}};
  EXPECT_EQ(mesh.e2.verify(forged, kSrc), PassportVerdict::kNoSlot);

  // Attacker guesses a slot: invalid.
  forged.shim.push_back({2, 0xdeadbeefdeadbeefull});
  EXPECT_EQ(mesh.e2.verify(forged, kSrc), PassportVerdict::kInvalid);
}

TEST(PassportTest, TamperedPayloadFailsEveryRemainingHop) {
  Mesh mesh;
  PassportPacket pp{make_packet(), {}};
  mesh.e1.stamp(pp, kPath);
  ASSERT_EQ(mesh.e2.verify(pp, kSrc), PassportVerdict::kValid);
  pp.packet.payload[2] ^= 0xff;  // modified in flight after hop 2
  EXPECT_EQ(mesh.e3.verify(pp, kSrc), PassportVerdict::kInvalid);
}

TEST(PassportTest, LegacyHopsSimplyHaveNoSlot) {
  Mesh mesh;
  PassportPacket pp{make_packet(), {}};
  // AS 3 is legacy: source has no key for it.
  PassportEndpoint partial_src(1);
  const Key128 k2 = derive_key128(102), k4 = derive_key128(104);
  partial_src.set_key(2, k2);
  partial_src.set_key(4, k4);
  PassportEndpoint e2(2), e4(4);
  e2.set_key(1, k2);
  e4.set_key(1, k4);
  EXPECT_EQ(partial_src.stamp(pp, kPath), 2u);
  EXPECT_EQ(e2.verify(pp, kSrc), PassportVerdict::kValid);
  EXPECT_EQ(e4.verify(pp, kSrc), PassportVerdict::kValid);
}

TEST(PassportVsDiscsTest, PerPacketCryptoCostScalesWithPathLength) {
  Mesh mesh;
  // DISCS: exactly one mark regardless of path length (§III-B).
  const AesCmac discs_mac(derive_key128(1));
  auto discs_packet = make_packet();
  ipv4_stamp(discs_packet, discs_mac);  // 1 CMAC

  for (std::size_t hops : {2u, 4u, 8u}) {
    std::vector<AsNumber> path{1};
    PassportEndpoint src(1);
    std::vector<PassportEndpoint> transits;
    for (std::size_t h = 0; h < hops; ++h) {
      const AsNumber as = static_cast<AsNumber>(10 + h);
      path.push_back(as);
      const Key128 key = derive_key128(200 + as);
      src.set_key(as, key);
      transits.emplace_back(as);
      transits.back().set_key(1, key);
    }
    PassportPacket pp{make_packet(), {}};
    EXPECT_EQ(src.stamp(pp, path), hops);           // vs DISCS's 1
    EXPECT_EQ(pp.shim_bytes(), 2 + 12 * hops);      // vs DISCS's 0 (IPv4)
    for (auto& t : transits) {
      EXPECT_EQ(t.verify(pp, kSrc), PassportVerdict::kValid);
    }
  }
}

}  // namespace
}  // namespace discs

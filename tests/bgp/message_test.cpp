#include "bgp/message.hpp"

#include <gtest/gtest.h>

namespace discs {
namespace {

TEST(PathAttributeTest, EncodeDecodeRoundTrip) {
  PathAttribute attr;
  attr.flags = kAttrFlagOptional | kAttrFlagTransitive;
  attr.type = kAttrTypeDiscsAd;
  attr.value = {1, 2, 3, 4, 5};
  const auto wire = attr.encode();
  EXPECT_EQ(wire.size(), 3u + 5u);
  std::size_t offset = 0;
  const auto decoded = PathAttribute::decode(wire, offset);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(offset, wire.size());
  EXPECT_EQ(*decoded, attr);
}

TEST(PathAttributeTest, ExtendedLengthForLargeValues) {
  PathAttribute attr;
  attr.flags = kAttrFlagOptional;
  attr.type = 7;
  attr.value.assign(300, 0xab);
  const auto wire = attr.encode();
  EXPECT_TRUE(wire[0] & kAttrFlagExtendedLength);
  EXPECT_EQ(wire.size(), 4u + 300u);
  std::size_t offset = 0;
  const auto decoded = PathAttribute::decode(wire, offset);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->value, attr.value);
  EXPECT_EQ(decoded->flags, attr.flags);  // ext-length bit is not persisted
}

TEST(PathAttributeTest, DecodeRejectsTruncation) {
  PathAttribute attr;
  attr.type = 1;
  attr.value = {1, 2, 3};
  auto wire = attr.encode();
  wire.pop_back();
  std::size_t offset = 0;
  EXPECT_FALSE(PathAttribute::decode(wire, offset).has_value());
  std::size_t offset2 = 0;
  EXPECT_FALSE(PathAttribute::decode(std::vector<std::uint8_t>{0x40}, offset2)
                   .has_value());
}

TEST(PathAttributeTest, DecodeSequenceOfAttributes) {
  PathAttribute a;
  a.type = 1;
  a.value = {9};
  PathAttribute b;
  b.type = 2;
  b.value = {8, 7};
  auto wire = a.encode();
  const auto wb = b.encode();
  wire.insert(wire.end(), wb.begin(), wb.end());
  std::size_t offset = 0;
  EXPECT_EQ(*PathAttribute::decode(wire, offset), a);
  EXPECT_EQ(*PathAttribute::decode(wire, offset), b);
  EXPECT_EQ(offset, wire.size());
}

TEST(DiscsAdTest, AttributeRoundTrip) {
  const DiscsAd ad{65001, "controller.as65001.net"};
  const auto attr = ad.to_attribute();
  EXPECT_TRUE(attr.optional());
  EXPECT_TRUE(attr.transitive());
  EXPECT_EQ(attr.type, kAttrTypeDiscsAd);
  const auto back = DiscsAd::from_attribute(attr);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, ad);
}

TEST(DiscsAdTest, SurvivesWireEncoding) {
  const DiscsAd ad{4200000001u, "c"};
  auto wire = ad.to_attribute().encode();
  std::size_t offset = 0;
  const auto attr = PathAttribute::decode(wire, offset);
  ASSERT_TRUE(attr.has_value());
  const auto back = DiscsAd::from_attribute(*attr);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->origin_as, 4200000001u);
  EXPECT_EQ(back->controller, "c");
}

TEST(DiscsAdTest, RejectsNonTransitiveOrWrongType) {
  auto attr = DiscsAd{65001, "c"}.to_attribute();
  attr.flags = kAttrFlagOptional;  // transitive bit cleared
  EXPECT_FALSE(DiscsAd::from_attribute(attr).has_value());
  auto attr2 = DiscsAd{65001, "c"}.to_attribute();
  attr2.type = kAttrTypeOrigin;
  EXPECT_FALSE(DiscsAd::from_attribute(attr2).has_value());
}

TEST(DiscsAdTest, RejectsMalformedPayloads) {
  PathAttribute attr;
  attr.flags = kAttrFlagOptional | kAttrFlagTransitive;
  attr.type = kAttrTypeDiscsAd;
  attr.value = {0, 0};  // too short
  EXPECT_FALSE(DiscsAd::from_attribute(attr).has_value());
  attr.value = {0, 0, 0xfd, 0xe9, 5, 'a'};  // name length 5 but 1 byte given
  EXPECT_FALSE(DiscsAd::from_attribute(attr).has_value());
  attr.value = {0, 0, 0, 0, 1, 'a'};  // AS 0 invalid
  EXPECT_FALSE(DiscsAd::from_attribute(attr).has_value());
}

TEST(BgpUpdateTest, FindAttributeAndAd) {
  BgpUpdate update;
  update.prefix = *Prefix4::parse("10.0.0.0/8");
  update.as_path = {65001};
  update.attributes.push_back(DiscsAd{65001, "ctl"}.to_attribute());
  EXPECT_NE(update.find_attribute(kAttrTypeDiscsAd), nullptr);
  EXPECT_EQ(update.find_attribute(kAttrTypeNextHop), nullptr);
  const auto ad = update.discs_ad();
  ASSERT_TRUE(ad.has_value());
  EXPECT_EQ(ad->origin_as, 65001u);
}

}  // namespace
}  // namespace discs

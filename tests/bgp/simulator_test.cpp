#include "bgp/simulator.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace discs {
namespace {

Prefix4 pfx(const char* text) { return *Prefix4::parse(text); }

// Same reference topology as the graph tests.
AsGraph reference_graph() {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_provider(3, 1);
  g.add_provider(4, 1);
  g.add_provider(5, 2);
  g.add_provider(6, 3);
  g.add_provider(7, 4);
  g.add_provider(8, 5);
  g.add_provider(9, 5);
  g.add_peering(7, 8);
  return g;
}

TEST(BgpSimulatorTest, OriginationReachesEveryAs) {
  const auto g = reference_graph();
  BgpSimulator sim(g);
  sim.originate(9, pfx("10.9.0.0/16"), {});
  EXPECT_EQ(sim.coverage(pfx("10.9.0.0/16")), 9u);
  const auto* route = sim.best_route(6, pfx("10.9.0.0/16"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->as_path, (std::vector<AsNumber>{3, 1, 2, 5, 9}));
}

TEST(BgpSimulatorTest, ValleyFreeSelectionMatchesGraphPaths) {
  const auto g = reference_graph();
  BgpSimulator sim(g);
  sim.originate(8, pfx("10.8.0.0/16"), {});
  // 7 uses the lateral peering, 6 climbs through tier-1.
  EXPECT_EQ(sim.best_route(7, pfx("10.8.0.0/16"))->as_path,
            (std::vector<AsNumber>{8}));
  EXPECT_EQ(sim.best_route(6, pfx("10.8.0.0/16"))->as_path,
            (std::vector<AsNumber>{3, 1, 2, 5, 8}));
}

TEST(BgpSimulatorTest, DiscsAdFloodsWithTheUpdate) {
  const auto g = reference_graph();
  BgpSimulator sim(g);
  sim.originate(9, pfx("10.9.0.0/16"), {DiscsAd{9, "ctl-9"}.to_attribute()});
  for (AsNumber as = 1; as <= 8; ++as) {
    const auto ads = sim.ads_seen(as);
    ASSERT_EQ(ads.size(), 1u) << "AS " << as;
    EXPECT_EQ(ads[0].origin_as, 9u);
    EXPECT_EQ(ads[0].controller, "ctl-9");
  }
}

TEST(BgpSimulatorTest, LegacyAsesRetainUnknownAttribute) {
  // Every intermediate AS in this simulator is "legacy" (it does not
  // interpret the attribute); the Ad must still arrive intact at the far
  // side of the topology, which is the incremental-deployment property.
  const auto g = reference_graph();
  BgpSimulator sim(g);
  sim.originate(6, pfx("10.6.0.0/16"), {DiscsAd{6, "ctl-6"}.to_attribute()});
  const auto ads = sim.ads_seen(9);
  ASSERT_EQ(ads.size(), 1u);
  EXPECT_EQ(ads[0].origin_as, 6u);
}

TEST(BgpSimulatorTest, ReOriginationPrependsAndRefloodsNewAttributes) {
  const auto g = reference_graph();
  BgpSimulator sim(g);
  sim.originate(9, pfx("10.9.0.0/16"), {});
  EXPECT_TRUE(sim.ads_seen(6).empty());

  // Later the AS deploys DISCS and re-announces with the Ad attached.
  sim.originate(9, pfx("10.9.0.0/16"), {DiscsAd{9, "ctl-9"}.to_attribute()});
  const auto* route = sim.best_route(6, pfx("10.9.0.0/16"));
  ASSERT_NE(route, nullptr);
  // Prepended origin: path ends with 9, 9.
  EXPECT_EQ(route->as_path, (std::vector<AsNumber>{3, 1, 2, 5, 9, 9}));
  const auto ads = sim.ads_seen(6);
  ASSERT_EQ(ads.size(), 1u);
  EXPECT_EQ(ads[0].origin_as, 9u);
}

TEST(BgpSimulatorTest, MultipleOriginsMultipleAds) {
  const auto g = reference_graph();
  BgpSimulator sim(g);
  sim.originate(6, pfx("10.6.0.0/16"), {DiscsAd{6, "ctl-6"}.to_attribute()});
  sim.originate(9, pfx("10.9.0.0/16"), {DiscsAd{9, "ctl-9"}.to_attribute()});
  sim.originate(7, pfx("10.7.0.0/16"), {});
  auto ads = sim.ads_seen(8);
  ASSERT_EQ(ads.size(), 2u);
  EXPECT_NE(ads[0].origin_as, ads[1].origin_as);
}

TEST(BgpSimulatorTest, RejectsForeignReOrigination) {
  const auto g = reference_graph();
  BgpSimulator sim(g);
  sim.originate(9, pfx("10.9.0.0/16"), {});
  EXPECT_THROW(sim.originate(8, pfx("10.9.0.0/16"), {}), std::invalid_argument);
  EXPECT_THROW(sim.originate(42, pfx("10.42.0.0/16"), {}), std::invalid_argument);
}

TEST(BgpSimulatorTest, PeerRouteNotExportedUpward) {
  // 7 learns 8's prefix over the peering; it must not export it to its
  // provider 4, so 4 (and 1) route via tier-1 instead of through 7.
  const auto g = reference_graph();
  BgpSimulator sim(g);
  sim.originate(8, pfx("10.8.0.0/16"), {});
  EXPECT_EQ(sim.best_route(4, pfx("10.8.0.0/16"))->as_path,
            (std::vector<AsNumber>{1, 2, 5, 8}));
}

TEST(BgpSimulatorTest, ConvergesOnGeneratedTopology) {
  std::vector<AsNumber> order(400);
  std::iota(order.begin(), order.end(), 1);
  const auto g = generate_graph(order, GraphConfig{});
  BgpSimulator sim(g);
  sim.originate(200, pfx("10.200.0.0/16"), {DiscsAd{200, "ctl"}.to_attribute()});
  EXPECT_EQ(sim.coverage(pfx("10.200.0.0/16")), 400u);
  // Every AS sees exactly one Ad.
  for (AsNumber as : {AsNumber{1}, AsNumber{57}, AsNumber{399}}) {
    EXPECT_EQ(sim.ads_seen(as).size(), 1u) << as;
  }
  EXPECT_GT(sim.updates_processed(), 400u);
}

}  // namespace
}  // namespace discs

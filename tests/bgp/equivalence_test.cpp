// Cross-validation property: the message-passing BGP simulator and the
// closed-form Gao-Rexford computation (AsGraph::routes_to) are independent
// implementations of the same policy — on any topology they must agree on
// route type and path length for every node, and on the exact next hop
// (both use the same deterministic tie-breaks).
#include <gtest/gtest.h>

#include <numeric>

#include "bgp/simulator.hpp"
#include "common/rng.hpp"

namespace discs {
namespace {

class BgpEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpEquivalence, SimulatorMatchesClosedFormRouting) {
  std::vector<AsNumber> order(150);
  std::iota(order.begin(), order.end(), 1);
  GraphConfig cfg;
  cfg.seed = GetParam();
  cfg.extra_peering_fraction = 0.3;
  const auto graph = generate_graph(order, cfg);

  Xoshiro256 rng(GetParam() ^ 0x5151);
  for (int round = 0; round < 6; ++round) {
    const AsNumber dst = 1 + static_cast<AsNumber>(rng.below(150));
    const Prefix4 prefix(Ipv4Address(0x0a000000 + (dst << 8)), 24);

    BgpSimulator sim(graph);
    sim.originate(dst, prefix, {});
    const auto table = graph.routes_to(dst);

    for (AsNumber as = 1; as <= 150; ++as) {
      if (as == dst) continue;
      const auto idx = graph.index_of(as);
      ASSERT_TRUE(idx.has_value());
      const auto* route = sim.best_route(as, prefix);
      const bool reachable =
          table.next_hop[*idx] != kNoAs ||
          table.length[*idx] == 0;  // dst itself
      ASSERT_EQ(route != nullptr, reachable)
          << "AS " << as << " -> " << dst << " (seed " << GetParam() << ")";
      if (route == nullptr) continue;
      EXPECT_EQ(route->as_path.size(), table.length[*idx])
          << "AS " << as << " -> " << dst;
      EXPECT_EQ(static_cast<int>(route->type), static_cast<int>(table.type[*idx]))
          << "AS " << as << " -> " << dst;
      EXPECT_EQ(route->as_path.front(), table.next_hop[*idx])
          << "AS " << as << " -> " << dst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpEquivalence, ::testing::Values(1, 2, 3, 7));

}  // namespace
}  // namespace discs

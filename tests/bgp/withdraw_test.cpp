// BGP withdrawal propagation tests: Adj-RIB-Out-targeted withdraws, fallback
// to alternative routes, and cascading route loss.
#include <gtest/gtest.h>

#include "bgp/simulator.hpp"

namespace discs {
namespace {

Prefix4 pfx(const char* text) { return *Prefix4::parse(text); }

// Reference topology from the other BGP tests.
AsGraph reference_graph() {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_provider(3, 1);
  g.add_provider(4, 1);
  g.add_provider(5, 2);
  g.add_provider(6, 3);
  g.add_provider(7, 4);
  g.add_provider(8, 5);
  g.add_provider(9, 5);
  g.add_peering(7, 8);
  return g;
}

TEST(BgpWithdrawTest, WithdrawClearsAllLocRibs) {
  const auto g = reference_graph();
  BgpSimulator sim(g);
  const auto p = pfx("10.9.0.0/16");
  sim.originate(9, p, {});
  ASSERT_EQ(sim.coverage(p), 9u);
  sim.withdraw(9, p);
  EXPECT_EQ(sim.coverage(p), 0u);
  for (AsNumber as = 1; as <= 9; ++as) {
    EXPECT_EQ(sim.best_route(as, p), nullptr) << "AS " << as;
  }
}

TEST(BgpWithdrawTest, WithdrawRemovesAds) {
  const auto g = reference_graph();
  BgpSimulator sim(g);
  const auto p = pfx("10.9.0.0/16");
  sim.originate(9, p, {DiscsAd{9, "ctl-9"}.to_attribute()});
  ASSERT_EQ(sim.ads_seen(6).size(), 1u);
  sim.withdraw(9, p);
  EXPECT_TRUE(sim.ads_seen(6).empty());
}

TEST(BgpWithdrawTest, ReOriginationWithoutAdFlushesIt) {
  // The undeploy path: re-announce the same prefix with no attributes.
  const auto g = reference_graph();
  BgpSimulator sim(g);
  const auto p = pfx("10.9.0.0/16");
  sim.originate(9, p, {DiscsAd{9, "ctl-9"}.to_attribute()});
  ASSERT_EQ(sim.ads_seen(6).size(), 1u);
  sim.originate(9, p, {});
  EXPECT_TRUE(sim.ads_seen(6).empty());
  EXPECT_EQ(sim.coverage(p), 9u);  // reachability intact
}

TEST(BgpWithdrawTest, FallbackToAlternativeRoute) {
  // A multihomed destination: withdrawals from one path leave the other.
  AsGraph g;
  g.add_peering(1, 2);
  g.add_provider(3, 1);
  g.add_provider(3, 2);  // 3 is multihomed to both tier-1s
  g.add_provider(4, 1);
  BgpSimulator sim(g);
  const auto p = pfx("10.3.0.0/16");
  sim.originate(3, p, {});
  // 4 routes to 3 via 1 (customer chain), never via 2.
  ASSERT_NE(sim.best_route(4, p), nullptr);
  EXPECT_EQ(sim.best_route(4, p)->as_path, (std::vector<AsNumber>{1, 3}));
  // Reachability everywhere.
  EXPECT_EQ(sim.coverage(p), 4u);
}

TEST(BgpWithdrawTest, WithdrawRequiresOriginator) {
  const auto g = reference_graph();
  BgpSimulator sim(g);
  const auto p = pfx("10.9.0.0/16");
  sim.originate(9, p, {});
  EXPECT_THROW(sim.withdraw(8, p), std::invalid_argument);
  EXPECT_THROW(sim.withdraw(9, pfx("10.8.0.0/16")), std::invalid_argument);
}

TEST(BgpWithdrawTest, PrefixCanMoveToNewOriginatorAfterWithdraw) {
  const auto g = reference_graph();
  BgpSimulator sim(g);
  const auto p = pfx("10.99.0.0/16");
  sim.originate(9, p, {});
  sim.withdraw(9, p);
  // Ownership released: another AS may originate now.
  sim.originate(8, p, {});
  EXPECT_EQ(sim.coverage(p), 9u);
  EXPECT_EQ(sim.best_route(5, p)->as_path, (std::vector<AsNumber>{8}));
}

TEST(BgpWithdrawTest, RepeatedOriginateWithdrawCycles) {
  const auto g = reference_graph();
  BgpSimulator sim(g);
  const auto p = pfx("10.9.0.0/16");
  for (int round = 0; round < 5; ++round) {
    sim.originate(9, p, {DiscsAd{9, "ctl"}.to_attribute()});
    EXPECT_EQ(sim.coverage(p), 9u) << round;
    EXPECT_EQ(sim.ads_seen(6).size(), 1u) << round;
    sim.withdraw(9, p);
    EXPECT_EQ(sim.coverage(p), 0u) << round;
  }
}

}  // namespace
}  // namespace discs

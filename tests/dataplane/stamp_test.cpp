#include "dataplane/stamp.hpp"

#include <gtest/gtest.h>

namespace discs {
namespace {

Ipv4Packet v4_packet() {
  auto p = Ipv4Packet::make(*Ipv4Address::parse("10.0.0.1"),
                            *Ipv4Address::parse("192.0.2.9"), IpProto::kUdp,
                            {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  p.header.flags = 0b010;  // DF — must survive stamping
  p.header.refresh_checksum();
  return p;
}

Ipv6Packet v6_packet(std::size_t payload = 16) {
  return Ipv6Packet::make(*Ipv6Address::parse("2001:db8::1"),
                          *Ipv6Address::parse("2001:db8:f::2"), 17,
                          std::vector<std::uint8_t>(payload, 0x5a));
}

TEST(Ipv4StampTest, StampWritesMarkAndKeepsChecksumValid) {
  const AesCmac mac(derive_key128(1));
  auto p = v4_packet();
  ipv4_stamp(p, mac);
  EXPECT_EQ(ipv4_read_mark(p), ipv4_mark(p, mac));
  EXPECT_TRUE(p.checksum_valid());
  EXPECT_EQ(p.header.flags, 0b010);  // flag bits preserved
}

TEST(Ipv4StampTest, MarkIs29Bits) {
  const AesCmac mac(derive_key128(2));
  for (int i = 0; i < 50; ++i) {
    auto p = v4_packet();
    p.payload[0] = static_cast<std::uint8_t>(i);
    p.header.refresh_checksum();
    EXPECT_LT(ipv4_mark(p, mac), 1u << 29);
  }
}

TEST(Ipv4StampTest, VerifyAcceptsAndErases) {
  const AesCmac mac(derive_key128(1));
  Xoshiro256 rng(7);
  auto p = v4_packet();
  ipv4_stamp(p, mac);
  EXPECT_EQ(ipv4_verify(p, mac, nullptr, rng), VerifyResult::kValid);
  EXPECT_TRUE(p.checksum_valid());
  // The mark has been randomized: re-verification must (overwhelmingly
  // likely) fail.
  EXPECT_EQ(ipv4_verify(p, mac, nullptr, rng), VerifyResult::kInvalid);
}

TEST(Ipv4StampTest, VerifyRejectsWrongKey) {
  const AesCmac good(derive_key128(1));
  const AesCmac bad(derive_key128(2));
  Xoshiro256 rng(7);
  auto p = v4_packet();
  ipv4_stamp(p, good);
  EXPECT_EQ(ipv4_verify(p, bad, nullptr, rng), VerifyResult::kInvalid);
  // A failed verify must not modify the packet.
  EXPECT_EQ(ipv4_read_mark(p), ipv4_mark(p, good));
}

TEST(Ipv4StampTest, VerifyAcceptsGraceKeyDuringRekey) {
  const AesCmac old_mac(derive_key128(1));
  const AesCmac new_mac(derive_key128(2));
  Xoshiro256 rng(7);
  auto p = v4_packet();
  ipv4_stamp(p, old_mac);  // stamped before the re-key switch
  EXPECT_EQ(ipv4_verify(p, new_mac, &old_mac, rng), VerifyResult::kValid);
}

TEST(Ipv4StampTest, VerifyRejectsTamperedPayload) {
  const AesCmac mac(derive_key128(1));
  Xoshiro256 rng(7);
  auto p = v4_packet();
  ipv4_stamp(p, mac);
  p.payload[3] ^= 0xff;  // in-flight modification of a MAC'd byte
  EXPECT_EQ(ipv4_verify(p, mac, nullptr, rng), VerifyResult::kInvalid);
}

TEST(Ipv4StampTest, EraseRandomizesMarkAndKeepsChecksum) {
  const AesCmac mac(derive_key128(1));
  Xoshiro256 rng(7);
  auto p = v4_packet();
  ipv4_stamp(p, mac);
  auto q = p;
  ipv4_erase(q, rng);
  EXPECT_TRUE(q.checksum_valid());
  EXPECT_NE(ipv4_read_mark(q), ipv4_read_mark(p));
}

TEST(Ipv4StampTest, MarkDependsOnKeyAndPacket) {
  const AesCmac k1(derive_key128(1));
  const AesCmac k2(derive_key128(2));
  auto a = v4_packet();
  auto b = v4_packet();
  b.payload[3] = 0x77;  // within the 8 MAC'd payload bytes
  auto c = v4_packet();
  c.payload[9] = 0x77;  // beyond the 8 MAC'd bytes: mark must not change
  EXPECT_NE(ipv4_mark(a, k1), ipv4_mark(a, k2));
  EXPECT_NE(ipv4_mark(a, k1), ipv4_mark(b, k1));
  EXPECT_EQ(ipv4_mark(a, k1), ipv4_mark(c, k1));
}

TEST(Ipv6StampTest, StampInsertsOptionAndUpdatesChain) {
  const AesCmac mac(derive_key128(3));
  auto p = v6_packet();
  const auto before = p.wire_size();
  const auto outcome = ipv6_stamp(p, mac, 1500);
  EXPECT_TRUE(outcome.stamped);
  EXPECT_FALSE(outcome.too_big);
  ASSERT_TRUE(p.dest_opts.has_value());
  EXPECT_EQ(p.header.next_header, kNextHeaderDestOpts);
  EXPECT_EQ(p.wire_size(), before + 8);  // paper: at most 8 bytes growth
  EXPECT_EQ(ipv6_read_mark(p), ipv6_mark(p, mac));
  // Serialized form must still parse.
  EXPECT_TRUE(Ipv6Packet::parse(p.serialize()).has_value());
}

TEST(Ipv6StampTest, StampIntoExistingDestOptsAddsOnlyTheOption) {
  const AesCmac mac(derive_key128(3));
  auto p = v6_packet();
  DestinationOptionsHeader dopt;
  dopt.options.push_back({0x05, {1, 2, 3, 4}});  // some other option
  p.dest_opts = dopt;
  p.refresh_chain();
  const auto before = p.wire_size();
  ASSERT_TRUE(ipv6_stamp(p, mac, 1500).stamped);
  EXPECT_EQ(p.dest_opts->options.size(), 2u);
  EXPECT_EQ(p.wire_size(), before + 8);
}

TEST(Ipv6StampTest, MtuExceededReportsTooBigAndLeavesPacketAlone) {
  const AesCmac mac(derive_key128(3));
  auto p = v6_packet(1452);  // 40 header + 1452 payload = 1492; +8 > 1496
  const auto original = p;
  const auto outcome = ipv6_stamp(p, mac, 1496);
  EXPECT_FALSE(outcome.stamped);
  EXPECT_TRUE(outcome.too_big);
  EXPECT_EQ(p, original);
}

TEST(Ipv6StampTest, VerifyAcceptsRemovesOptionAndHeader) {
  const AesCmac mac(derive_key128(3));
  auto p = v6_packet();
  const auto original = p;
  ASSERT_TRUE(ipv6_stamp(p, mac, 1500).stamped);
  EXPECT_EQ(ipv6_verify(p, mac, nullptr), VerifyResult::kValid);
  // The whole destination-options header disappears when the DISCS option
  // was its only content (paper §V-F).
  EXPECT_EQ(p, original);
}

TEST(Ipv6StampTest, VerifyKeepsForeignOptions) {
  const AesCmac mac(derive_key128(3));
  auto p = v6_packet();
  DestinationOptionsHeader dopt;
  dopt.options.push_back({0x05, {9}});
  p.dest_opts = dopt;
  p.refresh_chain();
  ASSERT_TRUE(ipv6_stamp(p, mac, 1500).stamped);
  EXPECT_EQ(ipv6_verify(p, mac, nullptr), VerifyResult::kValid);
  ASSERT_TRUE(p.dest_opts.has_value());
  ASSERT_EQ(p.dest_opts->options.size(), 1u);
  EXPECT_EQ(p.dest_opts->options[0].type, 0x05);
}

TEST(Ipv6StampTest, VerifyRejectsWrongKeyAndAbsentMark) {
  const AesCmac good(derive_key128(3));
  const AesCmac bad(derive_key128(4));
  auto p = v6_packet();
  ASSERT_TRUE(ipv6_stamp(p, good, 1500).stamped);
  EXPECT_EQ(ipv6_verify(p, bad, nullptr), VerifyResult::kInvalid);
  auto unmarked = v6_packet();
  EXPECT_EQ(ipv6_verify(unmarked, good, nullptr), VerifyResult::kAbsent);
}

TEST(Ipv6StampTest, GraceKeyAcceptedDuringRekey) {
  const AesCmac old_mac(derive_key128(3));
  const AesCmac new_mac(derive_key128(5));
  auto p = v6_packet();
  ASSERT_TRUE(ipv6_stamp(p, old_mac, 1500).stamped);
  EXPECT_EQ(ipv6_verify(p, new_mac, &old_mac), VerifyResult::kValid);
}

TEST(Ipv6StampTest, EraseWithoutJudging) {
  const AesCmac mac(derive_key128(3));
  auto p = v6_packet();
  const auto original = p;
  ASSERT_TRUE(ipv6_stamp(p, mac, 1500).stamped);
  ipv6_erase(p);
  EXPECT_EQ(p, original);
  ipv6_erase(p);  // idempotent on unmarked packets
  EXPECT_EQ(p, original);
}

TEST(Ipv6StampTest, MarkIs32BitsAndKeyDependent) {
  const AesCmac k1(derive_key128(1));
  const AesCmac k2(derive_key128(2));
  const auto p = v6_packet();
  EXPECT_NE(ipv6_mark(p, k1), ipv6_mark(p, k2));
}

}  // namespace
}  // namespace discs

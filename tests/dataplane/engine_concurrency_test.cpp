// Hammers the sharded engine from a table-update thread while batches flow:
// deploy/undeploy of verify windows and two-phase re-keying land mid-stream
// via update_tables(). Invariants checked:
//  * genuinely stamped traffic is NEVER dropped, whatever the interleaving —
//    a stale cached verdict or a torn key-table read would break this;
//  * no counter loss: merged RouterStats account for every packet and every
//    drop verdict the consumer observed;
//  * runs clean under TSan (the CI tsan job builds exactly this binary).
#include "dataplane/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace discs {
namespace {

constexpr AsNumber kPeerAs = 100;
constexpr AsNumber kVictimAs = 200;

// Alternating re-keys between kKeyA and kKeyB with retain_previous=true keep
// packets stamped under kKeyA verifiable at every instant: kKeyA is always
// either the active key or the re-keying grace key.
const Key128 kKeyA = derive_key128(1);
const Key128 kKeyB = derive_key128(2);

struct SharedTables {
  RouterTables victim;
  RouterTables peer;

  SharedTables() {
    auto fill = [](Pfx2AsTable& t) {
      t.add(*Prefix4::parse("10.0.0.0/8"), kPeerAs);
      t.add(*Prefix4::parse("20.0.0.0/8"), kVictimAs);
      t.add(*Prefix6::parse("2001:db8:aaaa::/48"), kPeerAs);
      t.add(*Prefix6::parse("2001:db8:bbbb::/48"), kVictimAs);
    };
    fill(victim.pfx2as);
    fill(peer.pfx2as);
    peer.key_s.set_key(kVictimAs, kKeyA);
    victim.key_v.set_key(kPeerAs, kKeyA);
    peer.out_dst.install(*Prefix4::parse("20.0.0.0/8"),
                         DefenseFunction::kCdpStamp, 0, kHour);
    peer.out_dst.install(*Prefix6::parse("2001:db8:bbbb::/48"),
                         DefenseFunction::kCdpStamp, 0, kHour);
    // The verify window starts deployed; the update thread toggles it.
    deploy(victim);
  }

  static void deploy(RouterTables& t) {
    t.in_dst.install(*Prefix4::parse("20.0.0.0/8"),
                     DefenseFunction::kCdpVerify, 0, kHour);
    t.in_dst.install(*Prefix6::parse("2001:db8:bbbb::/48"),
                     DefenseFunction::kCdpVerify, 0, kHour);
  }
  static void undeploy(RouterTables& t) {
    // Windows cannot be deleted individually; expiring everything after
    // rebasing the end time models the teardown. Simpler: expire(kHour+1)
    // clears all windows, deploy() reinstalls.
    t.in_dst.expire(kHour + 1);
  }
};

Ipv4Address rand4(Xoshiro256& rng, std::uint32_t net) {
  return Ipv4Address(net | (static_cast<std::uint32_t>(rng.next()) & 0xffffff));
}

Ipv6Address rand6(Xoshiro256& rng, std::uint16_t site) {
  return Ipv6Address::from_groups(
      {0x2001, 0xdb8, site, static_cast<std::uint16_t>(rng.below(0xffff)), 0, 0,
       0, static_cast<std::uint16_t>(rng.below(0xffff))});
}

TEST(EngineConcurrencyTest, UpdatesMidStreamNeverDropGenuineTraffic) {
  SharedTables shared;
  EngineConfig config;
  config.shards = 4;
  config.cache_slots = 256;
  DataPlaneEngine engine(shared.victim, kVictimAs, config);

  constexpr int kBatches = 150;
  constexpr std::size_t kBatchSize = 256;
  constexpr SimTime kNow = kMinute;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> updates{0};
  std::thread updater([&] {
    Xoshiro256 rng(777);
    bool deployed = true;
    bool key_is_a = true;
    while (!stop.load(std::memory_order_acquire)) {
      switch (rng.below(3)) {
        case 0:  // two-phase re-key: the old key stays valid as grace key
          key_is_a = !key_is_a;
          engine.update_tables([&](RouterTables& t) {
            t.key_v.set_key(kPeerAs, key_is_a ? kKeyA : kKeyB,
                            /*retain_previous=*/true);
          });
          break;
        case 1:  // deploy/undeploy of the verify windows
          deployed = !deployed;
          engine.update_tables([&](RouterTables& t) {
            if (deployed) {
              SharedTables::deploy(t);
            } else {
              SharedTables::undeploy(t);
            }
          });
          break;
        case 2:  // out-of-band flush must also be safe at any time
          engine.invalidate_caches();
          break;
      }
      updates.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  // Consumer: every packet is genuinely stamped with kKeyA, so every verdict
  // must be kPass regardless of how updates interleave.
  BorderRouter stamper(shared.peer, kPeerAs, 11);
  Xoshiro256 rng(123);
  std::uint64_t processed = 0;
  for (int b = 0; b < kBatches; ++b) {
    PacketBatch batch;
    batch.reserve(kBatchSize);
    while (batch.size() < kBatchSize) {
      if (rng.chance(0.3)) {
        Ipv6Packet p = Ipv6Packet::make(rand6(rng, 0xaaaa), rand6(rng, 0xbbbb),
                                        17, std::vector<std::uint8_t>(16));
        ASSERT_EQ(stamper.process_outbound(p, kNow), Verdict::kPass);
        batch.add(std::move(p));
      } else {
        Ipv4Packet p = Ipv4Packet::make(rand4(rng, 0x0a000000u),
                                        rand4(rng, 0x14000000u), IpProto::kUdp,
                                        std::vector<std::uint8_t>(16));
        ASSERT_EQ(stamper.process_outbound(p, kNow), Verdict::kPass);
        batch.add(std::move(p));
      }
    }
    const std::vector<Verdict> verdicts = engine.process_inbound(batch, kNow);
    ASSERT_EQ(verdicts.size(), kBatchSize);
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      ASSERT_EQ(verdicts[i], Verdict::kPass)
          << "batch " << b << " packet " << i
          << ": genuine packet dropped mid-update";
    }
    processed += verdicts.size();
  }
  stop.store(true, std::memory_order_release);
  updater.join();

  // No counter loss: the merged stats account for every packet, and no
  // interleaving ever produced a spoof verdict.
  const RouterStats stats = engine.stats();
  EXPECT_EQ(stats.in_processed, processed);
  EXPECT_EQ(stats.in_spoof_dropped, 0u);
  EXPECT_EQ(stats.in_spoof_sampled, 0u);
  EXPECT_GT(updates.load(), 0u);

  // Every packet drove at least the two function-table lookups through the
  // per-shard caches (plus a Pfx2AS lookup when the window was live).
  const auto cache = engine.cache_stats();
  EXPECT_GE(cache.hits + cache.misses, processed * 2);
}

// Spoofed traffic is judged against whatever table state its batch ran
// under: the verdict is kPass (window undeployed / key absent) or
// kDropSpoofed (window live) — never a crash, never a lost counter.
TEST(EngineConcurrencyTest, SpoofedTrafficCountsStayConsistent) {
  SharedTables shared;
  EngineConfig config;
  config.shards = 3;
  DataPlaneEngine engine(shared.victim, kVictimAs, config);

  std::atomic<bool> stop{false};
  std::thread updater([&] {
    Xoshiro256 rng(31);
    bool deployed = true;
    while (!stop.load(std::memory_order_acquire)) {
      deployed = !deployed;
      engine.update_tables([&](RouterTables& t) {
        if (deployed) {
          SharedTables::deploy(t);
        } else {
          SharedTables::undeploy(t);
        }
      });
      std::this_thread::yield();
    }
  });

  Xoshiro256 rng(321);
  std::uint64_t submitted = 0;
  std::uint64_t dropped_seen = 0;
  for (int b = 0; b < 150; ++b) {
    PacketBatch batch;
    for (std::size_t i = 0; i < 256; ++i) {
      // Unstamped packets claiming a peer source: spoofed whenever the
      // verify window is live.
      batch.add(Ipv4Packet::make(rand4(rng, 0x0a000000u),
                                 rand4(rng, 0x14000000u), IpProto::kUdp,
                                 std::vector<std::uint8_t>(8)));
    }
    submitted += batch.size();
    for (const Verdict v : engine.process_inbound(batch, kMinute)) {
      ASSERT_TRUE(v == Verdict::kPass || v == Verdict::kDropSpoofed);
      dropped_seen += v == Verdict::kDropSpoofed;
    }
  }
  stop.store(true, std::memory_order_release);
  updater.join();

  const RouterStats stats = engine.stats();
  EXPECT_EQ(stats.in_processed, submitted);
  EXPECT_EQ(stats.in_spoof_dropped, dropped_seen);
  EXPECT_EQ(stats.in_verified, 0u);
}

}  // namespace
}  // namespace discs

// Prioritized-uplink tests: the §I claim that DISCS verification enables
// priority queues under bandwidth exhaustion, which end-based collaboration
// (MEF) cannot.
#include "dataplane/uplink.hpp"

#include <gtest/gtest.h>

namespace discs {
namespace {

constexpr auto kV = static_cast<std::size_t>(TrafficClass::kVerified);
constexpr auto kU = static_cast<std::size_t>(TrafficClass::kUnverifiable);
constexpr auto kD = static_cast<std::size_t>(TrafficClass::kDemoted);

TEST(UplinkTest, UncongestedLinkServesEverything) {
  const auto r = strict_priority_admit({100, 200, 300}, 1000);
  EXPECT_EQ(r.served, (std::array<std::uint64_t, 3>{100, 200, 300}));
  EXPECT_EQ(r.dropped, (std::array<std::uint64_t, 3>{0, 0, 0}));
}

TEST(UplinkTest, StrictPriorityProtectsVerifiedTraffic) {
  // 500 genuine verified + 5000 unverifiable attack on a 1000-packet link.
  const auto r = strict_priority_admit({500, 5000, 0}, 1000);
  EXPECT_EQ(r.served[kV], 500u);  // every genuine packet survives
  EXPECT_EQ(r.served[kU], 500u);  // the rest of the capacity
  EXPECT_EQ(r.dropped[kU], 4500u);
  EXPECT_DOUBLE_EQ(r.served_fraction(TrafficClass::kVerified), 1.0);
}

TEST(UplinkTest, DemotedClassOnlyGetsLeftovers) {
  const auto r = strict_priority_admit({400, 400, 400}, 1000);
  EXPECT_EQ(r.served[kV], 400u);
  EXPECT_EQ(r.served[kU], 400u);
  EXPECT_EQ(r.served[kD], 200u);
  EXPECT_EQ(r.dropped[kD], 200u);
}

TEST(UplinkTest, CapacityZeroDropsAll) {
  const auto r = strict_priority_admit({10, 10, 10}, 0);
  EXPECT_EQ(r.served, (std::array<std::uint64_t, 3>{0, 0, 0}));
}

TEST(UplinkTest, FifoSharesProportionally) {
  // Without verification everything shares one queue: genuine gets the same
  // loss rate as the flood.
  const auto r = fifo_admit({500, 5000, 0}, 1000);
  EXPECT_NEAR(r.served_fraction(TrafficClass::kVerified),
              r.served_fraction(TrafficClass::kUnverifiable), 0.02);
  EXPECT_LT(r.served_fraction(TrafficClass::kVerified), 0.2);
  // Totals are exact.
  EXPECT_EQ(r.served[kV] + r.served[kU] + r.served[kD], 1000u);
}

TEST(UplinkTest, FifoUncongestedIsLossless) {
  const auto r = fifo_admit({10, 20, 30}, 100);
  EXPECT_EQ(r.dropped, (std::array<std::uint64_t, 3>{0, 0, 0}));
}

TEST(UplinkTest, TheMefContrastQuantified) {
  // The §I scenario: a 10x overload. With DISCS the victim serves 100% of
  // verified genuine traffic; with MEF (no verification signal, FIFO) the
  // same genuine traffic suffers ~90% loss.
  const std::array<std::uint64_t, 3> offered{1000, 10000, 0};
  const auto discs = strict_priority_admit(offered, 1100);
  const auto mef = fifo_admit(offered, 1100);
  EXPECT_DOUBLE_EQ(discs.served_fraction(TrafficClass::kVerified), 1.0);
  EXPECT_LT(mef.served_fraction(TrafficClass::kVerified), 0.15);
}

TEST(UplinkTest, ClassificationFromVerdicts) {
  EXPECT_EQ(classify_for_uplink(Verdict::kPass, true), TrafficClass::kVerified);
  EXPECT_EQ(classify_for_uplink(Verdict::kPass, false),
            TrafficClass::kUnverifiable);
  EXPECT_EQ(classify_for_uplink(Verdict::kDropSpoofed, false),
            TrafficClass::kDemoted);
}

// End-to-end: classify real router verdicts into uplink classes during an
// attack and schedule the interval.
TEST(UplinkTest, EndToEndPrioritizationWithRealVerdicts) {
  RouterTables victim_tables;
  victim_tables.pfx2as.add(*Prefix4::parse("10.0.0.0/8"), 100);
  victim_tables.pfx2as.add(*Prefix4::parse("20.0.0.0/8"), 200);
  victim_tables.pfx2as.add(*Prefix4::parse("40.0.0.0/8"), 400);
  const Key128 key = derive_key128(3);
  victim_tables.key_v.set_key(100, key);
  victim_tables.in_dst.install(*Prefix4::parse("20.0.0.0/8"),
                               DefenseFunction::kCdpVerify, 0, kHour);
  BorderRouter victim(victim_tables, 200, 1);
  victim.set_alarm_mode(true);  // demote instead of drop
  const AesCmac mac(key);

  std::array<std::uint64_t, kTrafficClasses> offered{};
  auto feed = [&](Ipv4Packet packet, bool stamped) {
    if (stamped) ipv4_stamp(packet, mac);
    const auto before = victim.stats().in_verified;
    const auto sampled_before = victim.stats().in_spoof_sampled;
    const Verdict verdict = victim.process_inbound(packet, kMinute);
    const bool verified = victim.stats().in_verified > before;
    const bool demoted = victim.stats().in_spoof_sampled > sampled_before;
    const Verdict effective = demoted ? Verdict::kDropSpoofed : verdict;
    ++offered[static_cast<std::size_t>(classify_for_uplink(effective, verified))];
  };

  // 50 genuine stamped packets from the peer, 200 spoofed claiming the
  // peer, 100 unverifiable from a legacy AS.
  for (int k = 0; k < 50; ++k) {
    feed(Ipv4Packet::make(*Ipv4Address::parse("10.0.0.1"),
                          *Ipv4Address::parse("20.0.0.1"), IpProto::kUdp,
                          {std::uint8_t(k)}),
         true);
  }
  for (int k = 0; k < 200; ++k) {
    feed(Ipv4Packet::make(*Ipv4Address::parse("10.0.0.2"),
                          *Ipv4Address::parse("20.0.0.1"), IpProto::kUdp,
                          {std::uint8_t(k), 9}),
         false);
  }
  for (int k = 0; k < 100; ++k) {
    feed(Ipv4Packet::make(*Ipv4Address::parse("40.0.0.1"),
                          *Ipv4Address::parse("20.0.0.1"), IpProto::kUdp,
                          {std::uint8_t(k), 7}),
         false);
  }
  EXPECT_EQ(offered[kV], 50u);
  EXPECT_EQ(offered[kU], 100u);
  EXPECT_EQ(offered[kD], 200u);

  // A link with room for half the offered load: all genuine + all
  // unverifiable survive; the demoted flood eats the loss.
  const auto r = strict_priority_admit(offered, 175);
  EXPECT_EQ(r.served[kV], 50u);
  EXPECT_EQ(r.served[kU], 100u);
  EXPECT_EQ(r.served[kD], 25u);
}

}  // namespace
}  // namespace discs

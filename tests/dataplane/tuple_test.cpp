// Tuple-generation truth table (paper §V-B) and Table I conformance at the
// tuple level.
#include "dataplane/tuple.hpp"

#include <gtest/gtest.h>

namespace discs {
namespace {

constexpr AsNumber kLocal = 100;   // this router's AS
constexpr AsNumber kVictim = 200;  // peer under attack
constexpr AsNumber kPeerB = 300;   // another peer
constexpr AsNumber kStranger = 400;

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }
Ipv4Address ip(const char* t) { return *Ipv4Address::parse(t); }

// Address plan: local = 10/8, victim = 20/8 (victim subnet 20.1/16),
// peer B = 30/8, stranger = 40/8.
class TupleTest : public ::testing::Test {
 protected:
  TupleTest() : gen_(tables_, kLocal) {
    tables_.pfx2as.add(pfx("10.0.0.0/8"), kLocal);
    tables_.pfx2as.add(pfx("20.0.0.0/8"), kVictim);
    tables_.pfx2as.add(pfx("30.0.0.0/8"), kPeerB);
    tables_.pfx2as.add(pfx("40.0.0.0/8"), kStranger);
    tables_.key_s.set_key(kVictim, derive_key128(1));
    tables_.key_s.set_key(kPeerB, derive_key128(2));
    tables_.key_v.set_key(kVictim, derive_key128(3));
    tables_.key_v.set_key(kPeerB, derive_key128(4));
  }

  RouterTables tables_;
  TupleGenerator gen_;
  const SimTime now_ = 1000;
};

TEST_F(TupleTest, NoFunctionsNoAction) {
  const auto in = gen_.in_tuple(ip("20.0.0.1"), ip("10.0.0.1"), now_);
  EXPECT_FALSE(in.verify);
  const auto out = gen_.out_tuple(ip("10.0.0.1"), ip("20.0.0.1"), now_);
  EXPECT_FALSE(out.drop);
  EXPECT_FALSE(out.stamp);
}

// Table I row "DP-filter | out | dst in v | if src not in local, drop".
TEST_F(TupleTest, DpDropsSpoofedSourceOnly) {
  tables_.out_dst.install(pfx("20.1.0.0/16"), DefenseFunction::kDp, 0, 2000);
  // Spoofed: source claims the victim's own space.
  EXPECT_TRUE(gen_.out_tuple(ip("20.1.2.3"), ip("20.1.0.9"), now_).drop);
  // Spoofed: source claims a stranger.
  EXPECT_TRUE(gen_.out_tuple(ip("40.0.0.1"), ip("20.1.0.9"), now_).drop);
  // Genuine: source is local.
  EXPECT_FALSE(gen_.out_tuple(ip("10.0.0.1"), ip("20.1.0.9"), now_).drop);
  // Other destinations unaffected.
  EXPECT_FALSE(gen_.out_tuple(ip("40.0.0.1"), ip("30.0.0.9"), now_).drop);
}

// Table I row "CDP-stamp | out | dst in v | stamp".
TEST_F(TupleTest, CdpStampsTowardVictim) {
  tables_.out_dst.install(pfx("20.1.0.0/16"), DefenseFunction::kCdpStamp, 0, 2000);
  const auto out = gen_.out_tuple(ip("10.0.0.1"), ip("20.1.0.9"), now_);
  EXPECT_TRUE(out.stamp);
  ASSERT_NE(out.key_s, nullptr);
  EXPECT_EQ(out.key_s->active, derive_key128(1));  // Key-S(victim)
  // Destination outside the protected subnet: no stamp.
  EXPECT_FALSE(gen_.out_tuple(ip("10.0.0.1"), ip("20.2.0.9"), now_).stamp);
}

// Table I row "CDP-verify | in | dst in v | if src in peer, verify".
TEST_F(TupleTest, CdpVerifyOnlyForPeerSources) {
  tables_.in_dst.install(pfx("10.1.0.0/16"), DefenseFunction::kCdpVerify, 0, 2000);
  const auto from_peer = gen_.in_tuple(ip("30.0.0.1"), ip("10.1.0.1"), now_);
  EXPECT_TRUE(from_peer.verify);
  ASSERT_NE(from_peer.key_v, nullptr);
  EXPECT_EQ(from_peer.key_v->active, derive_key128(4));  // Key-V(peer B)
  // Source maps to a non-peer: verify flag set but no key -> router passes.
  const auto from_stranger = gen_.in_tuple(ip("40.0.0.1"), ip("10.1.0.1"), now_);
  EXPECT_TRUE(from_stranger.verify);
  EXPECT_EQ(from_stranger.key_v, nullptr);
}

// Table I row "SP-filter | out | src in v | drop".
TEST_F(TupleTest, SpDropsPacketsClaimingVictimSource) {
  tables_.out_src.install(pfx("20.1.0.0/16"), DefenseFunction::kSp, 0, 2000);
  EXPECT_TRUE(gen_.out_tuple(ip("20.1.2.3"), ip("40.0.0.1"), now_).drop);
  EXPECT_FALSE(gen_.out_tuple(ip("20.2.0.1"), ip("40.0.0.1"), now_).drop);
  EXPECT_FALSE(gen_.out_tuple(ip("10.0.0.1"), ip("40.0.0.1"), now_).drop);
}

// Table I row "CSP-stamp | out | src in v | if dst in peer, stamp".
TEST_F(TupleTest, CspStampsOnlyTowardPeers) {
  // Executed by the victim AS itself; model a victim-side generator.
  RouterTables victim_tables;
  victim_tables.pfx2as.add(pfx("20.0.0.0/8"), kVictim);
  victim_tables.pfx2as.add(pfx("30.0.0.0/8"), kPeerB);
  victim_tables.pfx2as.add(pfx("40.0.0.0/8"), kStranger);
  victim_tables.key_s.set_key(kPeerB, derive_key128(9));
  victim_tables.out_src.install(pfx("20.1.0.0/16"), DefenseFunction::kCspStamp,
                                0, 2000);
  TupleGenerator victim_gen(victim_tables, kVictim);

  const auto to_peer = victim_gen.out_tuple(ip("20.1.0.1"), ip("30.0.0.1"), now_);
  EXPECT_TRUE(to_peer.stamp);
  ASSERT_NE(to_peer.key_s, nullptr);
  EXPECT_EQ(to_peer.key_s->active, derive_key128(9));
  // Destination is not a peer: Key-S lookup fails -> no stamp.
  EXPECT_FALSE(victim_gen.out_tuple(ip("20.1.0.1"), ip("40.0.0.1"), now_).stamp);
}

// Table I row "CSP-verify | in | src in v | verify".
TEST_F(TupleTest, CspVerifyUsesVictimKey) {
  tables_.in_src.install(pfx("20.1.0.0/16"), DefenseFunction::kCspVerify, 0, 2000);
  const auto in = gen_.in_tuple(ip("20.1.0.1"), ip("10.0.0.1"), now_);
  EXPECT_TRUE(in.verify);
  ASSERT_NE(in.key_v, nullptr);
  EXPECT_EQ(in.key_v->active, derive_key128(3));  // Key-V(victim)
}

TEST_F(TupleTest, DropBeatsStamp) {
  tables_.out_dst.install(pfx("20.1.0.0/16"), DefenseFunction::kDp, 0, 2000);
  tables_.out_dst.install(pfx("20.1.0.0/16"), DefenseFunction::kCdpStamp, 0, 2000);
  const auto spoofed = gen_.out_tuple(ip("40.0.0.1"), ip("20.1.0.9"), now_);
  EXPECT_TRUE(spoofed.drop);
  EXPECT_FALSE(spoofed.stamp);
  const auto genuine = gen_.out_tuple(ip("10.0.0.1"), ip("20.1.0.9"), now_);
  EXPECT_FALSE(genuine.drop);
  EXPECT_TRUE(genuine.stamp);
}

TEST_F(TupleTest, EraseOnlyPropagatesFromToleranceWindow) {
  RouterTables tables;
  tables.pfx2as.add(pfx("30.0.0.0/8"), kPeerB);
  tables.key_v.set_key(kPeerB, derive_key128(4));
  tables.in_dst = FunctionTable(/*tolerance=*/100);
  tables.in_dst.install(pfx("10.1.0.0/16"), DefenseFunction::kCdpVerify, 1000,
                        5000);
  TupleGenerator gen(tables, kLocal);
  EXPECT_TRUE(gen.in_tuple(ip("30.0.0.1"), ip("10.1.0.1"), 1050).erase_only);
  EXPECT_FALSE(gen.in_tuple(ip("30.0.0.1"), ip("10.1.0.1"), 3000).erase_only);
  EXPECT_TRUE(gen.in_tuple(ip("30.0.0.1"), ip("10.1.0.1"), 4950).erase_only);
}

TEST_F(TupleTest, ExpiredWindowsProduceNoAction) {
  tables_.out_dst.install(pfx("20.1.0.0/16"), DefenseFunction::kDp, 0, 500);
  EXPECT_FALSE(gen_.out_tuple(ip("40.0.0.1"), ip("20.1.0.9"), now_).drop);
}

TEST_F(TupleTest, UnroutedSourceTreatedAsNonLocal) {
  tables_.out_dst.install(pfx("20.1.0.0/16"), DefenseFunction::kDp, 0, 2000);
  // 99/8 is not in Pfx2AS at all -> certainly not local -> drop.
  EXPECT_TRUE(gen_.out_tuple(ip("99.0.0.1"), ip("20.1.0.9"), now_).drop);
}

}  // namespace
}  // namespace discs

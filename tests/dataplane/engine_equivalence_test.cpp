// Batch-vs-serial conformance suite: for randomized packet mixes
// (legit/spoofed, v4/v6, fragments, ICMP Time Exceeded, alarm mode on/off)
// the sharded DataPlaneEngine must return exactly the verdicts a single
// serial BorderRouter returns, its merged RouterStats must be identical,
// and every sink (alarm, flow report, ICMPv6) must emit the same multiset.
// The grid covers the single-worker bypass (w1), the persistent-worker
// path (w2/w4/w8 — oversubscribed on small hosts, which is exactly how the
// park/doorbell protocol gets exercised under preemption), ring-wraparound
// configs, and degenerate batch sizes.
#include "dataplane/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "net/icmp.hpp"

namespace discs {
namespace {

Prefix4 pfx4(const char* text) { return *Prefix4::parse(text); }
Prefix6 pfx6(const char* text) { return *Prefix6::parse(text); }

constexpr AsNumber kPeerAs = 100;
constexpr AsNumber kVictimAs = 200;
constexpr AsNumber kLegacyAs = 300;

// The table set of the victim AS (engine + serial reference share it) plus
// a stamping router at the peer AS to mint genuinely marked traffic.
struct Env {
  RouterTables victim;
  RouterTables peer;
  AesCmac rogue_mac{derive_key128(0xbad)};  // an attacker's guessed key

  Env() {
    auto fill = [](Pfx2AsTable& t) {
      t.add(*Prefix4::parse("10.0.0.0/8"), kPeerAs);
      t.add(*Prefix4::parse("20.0.0.0/8"), kVictimAs);
      t.add(*Prefix4::parse("30.0.0.0/8"), kLegacyAs);
      t.add(*Prefix6::parse("2001:db8:aaaa::/48"), kPeerAs);
      t.add(*Prefix6::parse("2001:db8:bbbb::/48"), kVictimAs);
      t.add(*Prefix6::parse("2001:db8:cccc::/48"), kLegacyAs);
    };
    fill(victim.pfx2as);
    fill(peer.pfx2as);

    const Key128 k_pv = derive_key128(1);  // peer stamps -> victim verifies
    const Key128 k_vp = derive_key128(2);  // victim stamps -> peer verifies
    peer.key_s.set_key(kVictimAs, k_pv);
    victim.key_v.set_key(kPeerAs, k_pv);
    victim.key_s.set_key(kPeerAs, k_vp);
    peer.key_v.set_key(kVictimAs, k_vp);

    // Peer egress: DP + CDP-stamp toward the victim's prefixes.
    for (const char* p : {"20.0.0.0/8"}) {
      peer.out_dst.install(pfx4(p), DefenseFunction::kDp, 0, kHour);
      peer.out_dst.install(pfx4(p), DefenseFunction::kCdpStamp, 0, kHour);
    }
    peer.out_dst.install(pfx6("2001:db8:bbbb::/48"), DefenseFunction::kCdpStamp,
                         0, kHour);

    // Victim ingress: CDP-verify on its own prefixes.
    victim.in_dst.install(pfx4("20.0.0.0/8"), DefenseFunction::kCdpVerify, 0,
                          kHour);
    victim.in_dst.install(pfx6("2001:db8:bbbb::/48"),
                          DefenseFunction::kCdpVerify, 0, kHour);

    // Victim egress (outbound phase): CSP-stamp its own sources, DP toward
    // the peer so spoofed-source egress gets filtered.
    victim.out_src.install(pfx4("20.0.0.0/8"), DefenseFunction::kCspStamp, 0,
                           kHour);
    victim.out_src.install(pfx6("2001:db8:bbbb::/48"),
                           DefenseFunction::kCspStamp, 0, kHour);
    victim.out_dst.install(pfx4("10.0.0.0/8"), DefenseFunction::kDp, 0, kHour);
    victim.out_dst.install(pfx6("2001:db8:aaaa::/48"), DefenseFunction::kDp, 0,
                           kHour);
  }
};

Ipv4Address rand4(Xoshiro256& rng, std::uint32_t net) {
  return Ipv4Address(net | (static_cast<std::uint32_t>(rng.next()) & 0xffffff));
}

Ipv6Address rand6(Xoshiro256& rng, std::uint16_t site) {
  return Ipv6Address::from_groups(
      {0x2001, 0xdb8, site, static_cast<std::uint16_t>(rng.below(0xffff)), 0, 0,
       0, static_cast<std::uint16_t>(rng.below(0xffff))});
}

std::vector<std::uint8_t> rand_payload(Xoshiro256& rng, std::size_t max) {
  std::vector<std::uint8_t> payload(rng.below(max));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  return payload;
}

// An inbound mix as seen at the victim's border: genuinely stamped peer
// traffic, spoofed traffic (wrong key or no mark), legacy traffic, fragments
// and ICMP Time Exceeded messages quoting stamped headers.
std::vector<BatchPacket> inbound_mix(Env& env, Xoshiro256& rng, std::size_t n,
                                     SimTime now) {
  BorderRouter stamper(env.peer, kPeerAs, rng.next());
  std::vector<BatchPacket> packets;
  packets.reserve(n);
  while (packets.size() < n) {
    const bool v6 = rng.chance(0.35);
    const std::uint64_t kind = rng.below(10);
    if (v6) {
      Ipv6Packet p = Ipv6Packet::make(
          rand6(rng, kind >= 8 ? 0xcccc : 0xaaaa), rand6(rng, 0xbbbb),
          /*upper_proto=*/17, rand_payload(rng, 64));
      if (kind < 5) {
        if (stamper.process_outbound(p, now) != Verdict::kPass) continue;
      } else if (kind < 7) {
        (void)ipv6_stamp(p, env.rogue_mac, 1500);  // spoofed, guessed key
      } else if (kind == 9) {
        // ICMPv6 Time Exceeded quoting a victim->peer stamped packet.
        Ipv6Packet offending = Ipv6Packet::make(rand6(rng, 0xbbbb),
                                                rand6(rng, 0xaaaa), 17,
                                                rand_payload(rng, 32));
        BorderRouter out(env.victim, kVictimAs, rng.next());
        if (out.process_outbound(offending, now) != Verdict::kPass) continue;
        p = build_time_exceeded_v6(offending, rand6(rng, 0xcccc));
      }  // else: unstamped — spoofed (kind 7) or legacy source (kind 8)
      packets.emplace_back(std::move(p));
    } else {
      Ipv4Packet p = Ipv4Packet::make(
          rand4(rng, kind >= 8 ? 0x1e000000u : 0x0a000000u),
          rand4(rng, 0x14000000u), IpProto::kUdp, rand_payload(rng, 64));
      if (rng.chance(0.2)) {  // fragment bits survive stamping
        p.header.flags |= 0x1;
        p.header.fragment_offset =
            static_cast<std::uint16_t>(rng.below(1u << 13));
        p.header.refresh_checksum();
      }
      if (kind < 5) {
        if (stamper.process_outbound(p, now) != Verdict::kPass) continue;
      } else if (kind < 7) {
        ipv4_stamp(p, env.rogue_mac);
      } else if (kind == 9) {
        // ICMP Time Exceeded quoting a victim->peer stamped packet.
        Ipv4Packet offending =
            Ipv4Packet::make(rand4(rng, 0x14000000u), rand4(rng, 0x0a000000u),
                             IpProto::kUdp, rand_payload(rng, 32));
        BorderRouter out(env.victim, kVictimAs, rng.next());
        if (out.process_outbound(offending, now) != Verdict::kPass) continue;
        p = build_time_exceeded_v4(offending, rand4(rng, 0x1e000000u));
      }  // else: unmarked — spoofed (kind 7) or legacy source (kind 8)
      packets.emplace_back(std::move(p));
    }
  }
  return packets;
}

// An outbound mix leaving the victim: genuine local sources (some
// fragmented, some v6 payloads straddling the MTU stamping limit) and
// spoofed sources that DP must filter.
std::vector<BatchPacket> outbound_mix(Env&, Xoshiro256& rng, std::size_t n) {
  std::vector<BatchPacket> packets;
  packets.reserve(n);
  while (packets.size() < n) {
    const bool v6 = rng.chance(0.4);
    const bool spoofed_src = rng.chance(0.25);
    if (v6) {
      // Payload sizes straddle the MTU-8 stamping threshold so both the
      // stamped and the Packet Too Big outcome occur.
      const std::size_t payload =
          rng.chance(0.3) ? 1440 + rng.below(40) : rng.below(64);
      Ipv6Packet p = Ipv6Packet::make(
          rand6(rng, spoofed_src ? 0xcccc : 0xbbbb), rand6(rng, 0xaaaa), 17,
          std::vector<std::uint8_t>(payload));
      packets.emplace_back(std::move(p));
    } else {
      Ipv4Packet p = Ipv4Packet::make(
          rand4(rng, spoofed_src ? 0x1e000000u : 0x14000000u),
          rand4(rng, 0x0a000000u), IpProto::kUdp, rand_payload(rng, 64));
      if (rng.chance(0.25)) {
        p.header.flags |= 0x1;
        p.header.refresh_checksum();
      }
      packets.emplace_back(std::move(p));
    }
  }
  return packets;
}

// Serialized form with the IPv4 mark fields (IPID + fragment offset low
// bits) and checksum masked out: verified/erased marks are re-randomized
// from each router's own RNG stream, so those bytes legitimately differ
// between the serial and sharded runs.
std::vector<std::uint8_t> canonical(const BatchPacket& packet) {
  return std::visit(
      [](const auto& p) {
        std::vector<std::uint8_t> wire = p.serialize();
        if constexpr (std::is_same_v<std::decay_t<decltype(p)>, Ipv4Packet>) {
          wire[4] = wire[5] = 0;       // identification
          wire[6] &= 0xe0;             // keep flags, zero offset high bits
          wire[7] = 0;                 // offset low bits
          wire[10] = wire[11] = 0;     // checksum (depends on the above)
        }
        return wire;
      },
      packet);
}

// Sortable canonical form of a FlowReport: every field participates, so two
// runs emitting the same multiset of reports produce the same sorted list.
std::string flow_key(const FlowReport& r) {
  std::string key = std::to_string(r.time) + '|' +
                    std::to_string(r.source_as) + '|' +
                    (r.inbound ? "in|" : "out|");
  key += r.ipv6 ? r.src6.to_string() + '>' + r.dst6.to_string()
                : r.src4.to_string() + '>' + r.dst4.to_string();
  key += '|' + std::to_string(r.functions) + '|' +
         std::to_string(static_cast<int>(r.verdict)) + '|' +
         std::to_string(r.sample_rate);
  return key;
}

struct Outcome {
  std::vector<Verdict> verdicts;
  RouterStats stats;
  std::vector<std::pair<AsNumber, bool>> alarms;  // (source_as, inbound)
  std::vector<std::vector<std::uint8_t>> icmp6;   // serialized PTB messages
  std::vector<std::string> flows;                 // canonical FlowReports
};

Outcome run_serial(Env& env, const std::vector<BatchPacket>& pristine,
                   bool outbound, bool alarm_mode, SimTime now) {
  Outcome out;
  std::vector<BatchPacket> packets = pristine;
  BorderRouter router(env.victim, kVictimAs, /*rng_seed=*/7);
  router.set_alarm_mode(alarm_mode);
  router.set_alarm_sink([&](const AlarmSample& s) {
    out.alarms.emplace_back(s.source_as, s.inbound);
  });
  router.set_icmp6_sink(
      [&](Ipv6Packet p) { out.icmp6.push_back(p.serialize()); });
  router.set_flow_sink(
      [&](const FlowReport& r) { out.flows.push_back(flow_key(r)); });
  for (BatchPacket& packet : packets) {
    out.verdicts.push_back(std::visit(
        [&](auto& p) {
          return outbound ? router.process_outbound(p, now)
                          : router.process_inbound(p, now);
        },
        packet));
  }
  out.stats = router.stats();
  return out;
}

Outcome run_engine(Env& env, const std::vector<BatchPacket>& pristine,
                   bool outbound, bool alarm_mode, SimTime now,
                   std::size_t shards, std::size_t batch_size,
                   EngineConfig config = {}) {
  Outcome out;
  config.shards = shards;
  config.rng_seed = 7;
  DataPlaneEngine engine(env.victim, kVictimAs, config);
  engine.set_alarm_mode(alarm_mode);
  engine.set_alarm_sink([&](const AlarmSample& s) {
    out.alarms.emplace_back(s.source_as, s.inbound);
  });
  engine.set_icmp6_sink(
      [&](Ipv6Packet p) { out.icmp6.push_back(p.serialize()); });
  engine.set_flow_sink(
      [&](const FlowReport& r) { out.flows.push_back(flow_key(r)); });
  // Feed the traffic as a sequence of batches, as a live pipeline would.
  for (std::size_t at = 0; at < pristine.size(); at += batch_size) {
    PacketBatch batch;
    const std::size_t end = std::min(pristine.size(), at + batch_size);
    for (std::size_t i = at; i < end; ++i) batch.add(BatchPacket(pristine[i]));
    const std::vector<Verdict> verdicts =
        outbound ? engine.process_outbound(batch, now)
                 : engine.process_inbound(batch, now);
    out.verdicts.insert(out.verdicts.end(), verdicts.begin(), verdicts.end());
  }
  out.stats = engine.stats();
  return out;
}

void expect_equivalent(Outcome& serial, Outcome& engine) {
  ASSERT_EQ(serial.verdicts.size(), engine.verdicts.size());
  for (std::size_t i = 0; i < serial.verdicts.size(); ++i) {
    ASSERT_EQ(serial.verdicts[i], engine.verdicts[i]) << "packet " << i;
  }
  EXPECT_EQ(serial.stats, engine.stats);
  // Sinks fire in shard-major order inside a batch; compare as multisets.
  std::sort(serial.alarms.begin(), serial.alarms.end());
  std::sort(engine.alarms.begin(), engine.alarms.end());
  EXPECT_EQ(serial.alarms, engine.alarms);
  std::sort(serial.icmp6.begin(), serial.icmp6.end());
  std::sort(engine.icmp6.begin(), engine.icmp6.end());
  EXPECT_EQ(serial.icmp6, engine.icmp6);
  std::sort(serial.flows.begin(), serial.flows.end());
  std::sort(engine.flows.begin(), engine.flows.end());
  EXPECT_EQ(serial.flows, engine.flows);
}

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(EngineEquivalence, InboundMatchesSerial) {
  const auto [seed, shards] = GetParam();
  Env env;
  Xoshiro256 rng(seed);
  const SimTime now = kMinute;
  const auto mix = inbound_mix(env, rng, 10'000, now);
  for (const bool alarm_mode : {false, true}) {
    Outcome serial = run_serial(env, mix, /*outbound=*/false, alarm_mode, now);
    Outcome engine = run_engine(env, mix, /*outbound=*/false, alarm_mode, now,
                                shards, /*batch_size=*/512);
    expect_equivalent(serial, engine);
  }
}

TEST_P(EngineEquivalence, OutboundMatchesSerial) {
  const auto [seed, shards] = GetParam();
  Env env;
  Xoshiro256 rng(seed ^ 0x5a5a);
  const SimTime now = kMinute;
  const auto mix = outbound_mix(env, rng, 10'000);
  Outcome serial = run_serial(env, mix, /*outbound=*/true, false, now);
  Outcome engine = run_engine(env, mix, /*outbound=*/true, false, now, shards,
                              /*batch_size=*/512);
  expect_equivalent(serial, engine);
}

// Sealed-path conformance: the same mixes through an engine whose tables
// were sealed — so lookups ride the compiled DIR-24-8/flat engines with the
// per-shard LPM cache retired — must produce exactly the verdicts, stats,
// and sink multisets of the serial router walking the build tries. Env
// construction is deterministic, so the two Envs hold identical tables and
// keys; only the lookup substrate differs.
TEST_P(EngineEquivalence, SealedTablesMatchTriePath) {
  const auto [seed, shards] = GetParam();
  Env trie_env;
  Env sealed_env;
  sealed_env.victim.seal();
  Xoshiro256 rng(seed ^ 0xc0ffee);
  const SimTime now = kMinute;
  const auto in_mix = inbound_mix(trie_env, rng, 5'000, now);
  for (const bool alarm_mode : {false, true}) {
    Outcome serial =
        run_serial(trie_env, in_mix, /*outbound=*/false, alarm_mode, now);
    Outcome engine = run_engine(sealed_env, in_mix, /*outbound=*/false,
                                alarm_mode, now, shards, /*batch_size=*/512);
    expect_equivalent(serial, engine);
  }
  const auto out_mix = outbound_mix(trie_env, rng, 5'000);
  Outcome serial =
      run_serial(trie_env, out_mix, /*outbound=*/true, false, now);
  Outcome engine = run_engine(sealed_env, out_mix, /*outbound=*/true, false,
                              now, shards, /*batch_size=*/512);
  expect_equivalent(serial, engine);
}

// w1 exercises the inline bypass; w2/w4/w8 exercise the persistent-worker
// rings (oversubscribed on small CI hosts, which adds preemption right in
// the middle of the park/doorbell handshake — the interesting schedule).
INSTANTIATE_TEST_SUITE_P(
    SeedsAndWorkers, EngineEquivalence,
    ::testing::Combine(::testing::Values(3u, 17u, 99u),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{8})));

// Degenerate batch shapes at full worker count: empty batches (must not
// wake anyone), single packets, and batch sizes straddling the ring
// capacity. A 2-slot ring with a pinned 1-packet chunk forces index
// wraparound and producer backpressure within a single 10k-packet run.
class EngineEdgeCases : public ::testing::Test {
 protected:
  static EngineConfig tiny_ring() {
    EngineConfig config;
    config.ring_slots = 2;   // capacity 2 after power-of-two rounding
    config.min_chunk = 1;    // pinned: every packet is its own work item
    config.max_chunk = 1;
    return config;
  }
};

TEST_F(EngineEdgeCases, EmptyAndSinglePacketBatches) {
  Env env;
  Xoshiro256 rng(7);
  const SimTime now = kMinute;
  const auto mix = inbound_mix(env, rng, 64, now);
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{64}}) {
    Outcome serial = run_serial(env, mix, /*outbound=*/false, false, now);
    Outcome engine =
        run_engine(env, mix, /*outbound=*/false, false, now, 4, batch_size);
    expect_equivalent(serial, engine);
  }
  // A zero-size batch is a no-op: no verdicts, no stats, no worker wakeups.
  DataPlaneEngine engine(env.victim, kVictimAs, EngineConfig{.shards = 4});
  PacketBatch empty;
  EXPECT_TRUE(engine.process_inbound(empty, now).empty());
  EXPECT_EQ(engine.stats(), RouterStats{});
  EXPECT_EQ(engine.worker_stats().chunks, 0u);
}

TEST_F(EngineEdgeCases, RingWraparoundUnderBackpressure) {
  Env env;
  Xoshiro256 rng(23);
  const SimTime now = kMinute;
  const auto mix = inbound_mix(env, rng, 10'000, now);
  Outcome serial = run_serial(env, mix, /*outbound=*/false, true, now);
  Outcome engine = run_engine(env, mix, /*outbound=*/false, true, now,
                              /*shards=*/4, /*batch_size=*/512, tiny_ring());
  expect_equivalent(serial, engine);
}

TEST_F(EngineEdgeCases, BatchSizesStraddlingRingCapacity) {
  Env env;
  Xoshiro256 rng(31);
  const SimTime now = kMinute;
  const auto mix = outbound_mix(env, rng, 2'000);
  EngineConfig config = tiny_ring();
  // Per-shard occupancy hovers around ring capacity (2) and one below/above
  // it as the batch size walks 1..5 packets.
  for (const std::size_t batch_size :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    Outcome serial = run_serial(env, mix, /*outbound=*/true, false, now);
    Outcome engine = run_engine(env, mix, /*outbound=*/true, false, now,
                                /*shards=*/4, batch_size, config);
    expect_equivalent(serial, engine);
  }
}

// The round trip peer-stamp -> engine-verify leaves genuine packets intact:
// v6 packets byte-identical, v4 packets identical outside the mark fields.
TEST(EngineRoundTrip, GenuineTrafficSurvivesAndMarksAreErased) {
  Env env;
  Xoshiro256 rng(42);
  const SimTime now = kMinute;
  BorderRouter stamper(env.peer, kPeerAs, 5);

  PacketBatch batch;
  std::vector<BatchPacket> originals;
  for (int i = 0; i < 500; ++i) {
    if (rng.chance(0.5)) {
      Ipv6Packet p = Ipv6Packet::make(rand6(rng, 0xaaaa), rand6(rng, 0xbbbb),
                                      17, rand_payload(rng, 48));
      originals.emplace_back(p);
      EXPECT_EQ(stamper.process_outbound(p, now), Verdict::kPass);
      batch.add(std::move(p));
    } else {
      Ipv4Packet p = Ipv4Packet::make(rand4(rng, 0x0a000000u),
                                      rand4(rng, 0x14000000u), IpProto::kUdp,
                                      rand_payload(rng, 48));
      originals.emplace_back(p);
      EXPECT_EQ(stamper.process_outbound(p, now), Verdict::kPass);
      batch.add(std::move(p));
    }
  }

  DataPlaneEngine engine(env.victim, kVictimAs, EngineConfig{.shards = 4});
  const auto verdicts = engine.process_inbound(batch, now);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(verdicts[i], Verdict::kPass) << i;
    // The verified mark was erased: the packet equals the pre-stamp original
    // modulo the randomized IPv4 mark fields.
    EXPECT_EQ(canonical(batch[i]), canonical(originals[i])) << i;
  }
  EXPECT_EQ(engine.stats().in_verified, 500u);
}

}  // namespace
}  // namespace discs

// End-to-end border-router tests: two routers (a peer DAS and the victim
// DAS) exchanging packets through the §V-C processing flow.
#include "dataplane/router.hpp"

#include <gtest/gtest.h>

namespace discs {
namespace {

constexpr AsNumber kPeerAs = 100;    // cooperating peer
constexpr AsNumber kVictimAs = 200;  // DAS under attack

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }
Ipv4Address ip(const char* t) { return *Ipv4Address::parse(t); }
Ipv6Address ip6(const char* t) { return *Ipv6Address::parse(t); }

// Shared address plan: peer = 10/8 (+2001:db8:a::/48),
// victim = 20/8 (+2001:db8:b::/48), stranger = 40/8.
void fill_pfx2as(Pfx2AsTable& t) {
  t.add(pfx("10.0.0.0/8"), kPeerAs);
  t.add(pfx("20.0.0.0/8"), kVictimAs);
  t.add(pfx("40.0.0.0/8"), 400);
  t.add(*Prefix6::parse("2001:db8:a::/48"), kPeerAs);
  t.add(*Prefix6::parse("2001:db8:b::/48"), kVictimAs);
}

class RouterPairTest : public ::testing::Test {
 protected:
  RouterPairTest()
      : peer_router_(peer_tables_, kPeerAs, 1),
        victim_router_(victim_tables_, kVictimAs, 2) {
    fill_pfx2as(peer_tables_.pfx2as);
    fill_pfx2as(victim_tables_.pfx2as);
    // Symmetric keys: key_{peer,victim} for peer->victim traffic and
    // key_{victim,peer} for the reverse (paper §IV-D naming).
    const Key128 k_pv = derive_key128(11);
    const Key128 k_vp = derive_key128(22);
    peer_tables_.key_s.set_key(kVictimAs, k_pv);
    victim_tables_.key_v.set_key(kPeerAs, k_pv);
    victim_tables_.key_s.set_key(kPeerAs, k_vp);
    peer_tables_.key_v.set_key(kVictimAs, k_vp);
  }

  /// Victim invokes DP+CDP for subnet 20.1/16 (d-DDoS defense): the peer
  /// filters + stamps outbound, the victim verifies inbound.
  void invoke_dp_cdp(SimTime start, SimTime end) {
    peer_tables_.out_dst.install(pfx("20.1.0.0/16"), DefenseFunction::kDp,
                                 start, end);
    peer_tables_.out_dst.install(pfx("20.1.0.0/16"), DefenseFunction::kCdpStamp,
                                 start, end);
    victim_tables_.in_dst.install(pfx("20.1.0.0/16"),
                                  DefenseFunction::kCdpVerify, start, end);
  }

  RouterTables peer_tables_;
  RouterTables victim_tables_;
  BorderRouter peer_router_;
  BorderRouter victim_router_;
  const SimTime now_ = 10 * kSecond;
};

TEST_F(RouterPairTest, GenuineTrafficPassesEndToEnd) {
  invoke_dp_cdp(0, kHour);
  auto p = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp,
                            {1, 2, 3});
  EXPECT_EQ(peer_router_.process_outbound(p, now_), Verdict::kPass);
  EXPECT_EQ(peer_router_.stats().out_stamped, 1u);
  EXPECT_EQ(victim_router_.process_inbound(p, now_ + kMillisecond),
            Verdict::kPass);
  EXPECT_EQ(victim_router_.stats().in_verified, 1u);
  EXPECT_TRUE(p.checksum_valid());
}

TEST_F(RouterPairTest, SpoofedPacketDroppedAtPeerEgress) {
  invoke_dp_cdp(0, kHour);
  // Agent inside the peer AS spoofing a stranger's source.
  auto p = Ipv4Packet::make(ip("40.0.0.1"), ip("20.1.0.9"), IpProto::kUdp, {});
  EXPECT_EQ(peer_router_.process_outbound(p, now_), Verdict::kDropFiltered);
  EXPECT_EQ(peer_router_.stats().out_dropped, 1u);
}

TEST_F(RouterPairTest, UnstampedDirectSpoofDroppedAtVictim) {
  invoke_dp_cdp(0, kHour);
  // Attack traffic from a legacy AS spoofing the peer's addresses reaches
  // the victim without a mark; CDP-verify (src in peer) rejects it.
  auto p = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp, {});
  EXPECT_EQ(victim_router_.process_inbound(p, now_), Verdict::kDropSpoofed);
  EXPECT_EQ(victim_router_.stats().in_spoof_dropped, 1u);
}

TEST_F(RouterPairTest, NonPeerSourcesPassUnverified) {
  invoke_dp_cdp(0, kHour);
  // Victim cannot judge traffic whose source is not a collaborator.
  auto p = Ipv4Packet::make(ip("40.0.0.7"), ip("20.1.0.9"), IpProto::kUdp, {});
  EXPECT_EQ(victim_router_.process_inbound(p, now_), Verdict::kPass);
  EXPECT_EQ(victim_router_.stats().in_passed_unverified, 1u);
}

TEST_F(RouterPairTest, TrafficOutsideVictimSubnetUntouched) {
  invoke_dp_cdp(0, kHour);
  auto p = Ipv4Packet::make(ip("40.0.0.1"), ip("20.2.0.9"), IpProto::kUdp, {});
  EXPECT_EQ(peer_router_.process_outbound(p, now_), Verdict::kPass);
  EXPECT_EQ(peer_router_.stats().out_stamped, 0u);
  EXPECT_EQ(victim_router_.process_inbound(p, now_), Verdict::kPass);
}

TEST_F(RouterPairTest, InvocationExpiryStopsProcessing) {
  invoke_dp_cdp(0, now_ - kSecond);
  auto p = Ipv4Packet::make(ip("40.0.0.1"), ip("20.1.0.9"), IpProto::kUdp, {});
  EXPECT_EQ(peer_router_.process_outbound(p, now_), Verdict::kPass);
  EXPECT_EQ(victim_router_.process_inbound(p, now_), Verdict::kPass);
}

TEST_F(RouterPairTest, ToleranceIntervalErasesWithoutJudging) {
  // Verification started 1 s ago with the default 2 s tolerance: stale
  // marks (e.g. stamped under no key at all) are erased, not dropped.
  invoke_dp_cdp(now_ - kSecond, kHour);
  auto p = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp, {});
  EXPECT_EQ(victim_router_.process_inbound(p, now_), Verdict::kPass);
  EXPECT_EQ(victim_router_.stats().in_erased_tolerance, 1u);
}

TEST_F(RouterPairTest, AlarmModeSamplesInsteadOfDropping) {
  invoke_dp_cdp(0, kHour);
  victim_router_.set_alarm_mode(true);
  std::vector<AlarmSample> samples;
  victim_router_.set_alarm_sink(
      [&](const AlarmSample& s) { samples.push_back(s); });

  auto p = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp, {});
  EXPECT_EQ(victim_router_.process_inbound(p, now_), Verdict::kPass);
  EXPECT_EQ(victim_router_.stats().in_spoof_sampled, 1u);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].source_as, kPeerAs);

  // Quitting alarm mode returns to dropping.
  victim_router_.set_alarm_mode(false);
  auto q = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp, {});
  EXPECT_EQ(victim_router_.process_inbound(q, now_), Verdict::kDropSpoofed);
}

TEST_F(RouterPairTest, RekeyGraceWindowAcceptsOldKey) {
  invoke_dp_cdp(0, kHour);
  auto p = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp, {});
  EXPECT_EQ(peer_router_.process_outbound(p, now_), Verdict::kPass);

  // Victim installs the new verification key while the packet is in flight;
  // the old key is retained as grace key.
  victim_tables_.key_v.set_key(kPeerAs, derive_key128(99));
  EXPECT_EQ(victim_router_.process_inbound(p, now_ + kMillisecond),
            Verdict::kPass);

  // After finish_rekey the old key stops being accepted.
  auto q = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp, {});
  EXPECT_EQ(peer_router_.process_outbound(q, now_), Verdict::kPass);
  victim_tables_.key_v.finish_rekey(kPeerAs);
  EXPECT_EQ(victim_router_.process_inbound(q, now_ + kMillisecond),
            Verdict::kDropSpoofed);
}

TEST_F(RouterPairTest, Ipv6EndToEndStampAndVerify) {
  peer_tables_.out_dst.install(*Prefix6::parse("2001:db8:b::/48"),
                               DefenseFunction::kCdpStamp, 0, kHour);
  victim_tables_.in_dst.install(*Prefix6::parse("2001:db8:b::/48"),
                                DefenseFunction::kCdpVerify, 0, kHour);
  auto p = Ipv6Packet::make(ip6("2001:db8:a::1"), ip6("2001:db8:b::9"), 17,
                            {1, 2, 3, 4});
  const auto original = p;
  EXPECT_EQ(peer_router_.process_outbound(p, now_), Verdict::kPass);
  EXPECT_TRUE(p.dest_opts.has_value());
  EXPECT_EQ(victim_router_.process_inbound(p, now_), Verdict::kPass);
  EXPECT_EQ(p, original);  // mark fully removed
}

TEST_F(RouterPairTest, Ipv6SpoofWithoutMarkDropped) {
  victim_tables_.in_dst.install(*Prefix6::parse("2001:db8:b::/48"),
                                DefenseFunction::kCdpVerify, 0, kHour);
  auto p = Ipv6Packet::make(ip6("2001:db8:a::1"), ip6("2001:db8:b::9"), 17, {});
  EXPECT_EQ(victim_router_.process_inbound(p, now_), Verdict::kDropSpoofed);
}

TEST_F(RouterPairTest, Ipv6MtuOverflowEmitsPacketTooBig) {
  peer_tables_.out_dst.install(*Prefix6::parse("2001:db8:b::/48"),
                               DefenseFunction::kCdpStamp, 0, kHour);
  BorderRouter small_mtu_router(peer_tables_, kPeerAs, 3, /*mtu=*/128);
  std::vector<Ipv6Packet> icmp;
  small_mtu_router.set_icmp6_sink([&](Ipv6Packet m) { icmp.push_back(std::move(m)); });

  auto p = Ipv6Packet::make(ip6("2001:db8:a::1"), ip6("2001:db8:b::9"), 17,
                            std::vector<std::uint8_t>(85, 0));  // 40+85=125, +8 > 128
  EXPECT_EQ(small_mtu_router.process_outbound(p, now_), Verdict::kDropTooBig);
  ASSERT_EQ(icmp.size(), 1u);
  EXPECT_EQ(icmp[0].payload[0], kIcmpV6PacketTooBig);
  // Advertised MTU is 8 below the link MTU.
  const std::uint32_t mtu = (std::uint32_t{icmp[0].payload[4]} << 24) |
                            (std::uint32_t{icmp[0].payload[5]} << 16) |
                            (std::uint32_t{icmp[0].payload[6]} << 8) |
                            icmp[0].payload[7];
  EXPECT_EQ(mtu, 120u);
}

TEST_F(RouterPairTest, InboundTimeExceededScrubbed) {
  invoke_dp_cdp(0, kHour);
  // An attacker's probe: stamped packet whose TTL expired just outside the
  // peer AS; the returned Time Exceeded quotes the stamped header.
  auto probe = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp,
                                {1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(peer_router_.process_outbound(probe, now_), Verdict::kPass);
  const std::uint32_t stamped_mark = ipv4_read_mark(probe);

  auto te = build_time_exceeded_v4(probe, ip("40.0.0.254"));
  EXPECT_EQ(peer_router_.process_inbound(te, now_), Verdict::kPass);
  EXPECT_EQ(peer_router_.stats().icmp_scrubbed, 1u);
  // The quoted mark is gone.
  const auto quoted = Ipv4Header::parse(
      std::span<const std::uint8_t>(te.payload.data() + 8, 20));
  ASSERT_TRUE(quoted.has_value());
  const std::uint32_t leaked =
      (std::uint32_t{quoted->identification} << 13) | quoted->fragment_offset;
  EXPECT_NE(leaked, stamped_mark);
  EXPECT_EQ(leaked, 0u);
}

TEST_F(RouterPairTest, ReplayOfCapturedMarkFailsForDifferentPacket) {
  invoke_dp_cdp(0, kHour);
  auto original = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"),
                                   IpProto::kUdp, {1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(peer_router_.process_outbound(original, now_), Verdict::kPass);
  const std::uint32_t captured = ipv4_read_mark(original);

  // Attacker reuses the captured mark on a packet with different payload:
  // the MAC is bound to msg, so verification fails (paper §VI-E2).
  auto forged = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp,
                                 {9, 9, 9, 9, 9, 9, 9, 9});
  forged.header.identification = static_cast<std::uint16_t>(captured >> 13);
  forged.header.fragment_offset = static_cast<std::uint16_t>(captured & 0x1fff);
  forged.header.refresh_checksum();
  EXPECT_EQ(victim_router_.process_inbound(forged, now_), Verdict::kDropSpoofed);

  // An exact replay (identical msg) does verify — detection of identical
  // duplicates is the destination host's job per the paper.
  EXPECT_EQ(victim_router_.process_inbound(original, now_), Verdict::kPass);
}

TEST_F(RouterPairTest, FragmentCollateralCounted) {
  invoke_dp_cdp(0, kHour);
  // A genuine fragmented packet (MF set) toward the protected prefix: the
  // stamp overwrites its reassembly fields; the router records the damage.
  auto frag1 = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp,
                                std::vector<std::uint8_t>(16, 1));
  frag1.header.flags = 0b001;  // more fragments
  frag1.header.identification = 0x4242;
  frag1.header.refresh_checksum();
  auto frag2 = frag1;
  frag2.header.flags = 0;
  frag2.header.fragment_offset = 2;  // continuation fragment
  frag2.header.refresh_checksum();
  auto whole = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp,
                                {1, 2});

  EXPECT_EQ(peer_router_.process_outbound(frag1, now_), Verdict::kPass);
  EXPECT_EQ(peer_router_.process_outbound(frag2, now_), Verdict::kPass);
  EXPECT_EQ(peer_router_.process_outbound(whole, now_), Verdict::kPass);
  EXPECT_EQ(peer_router_.stats().fragments_stamped, 2u);
  EXPECT_EQ(peer_router_.stats().out_stamped, 3u);
  // The two fragments can no longer share an IPID: reassembly broken.
  EXPECT_NE(frag1.header.identification, 0x4242);
}

TEST_F(RouterPairTest, AlarmSamplingRateThinsReports) {
  invoke_dp_cdp(0, kHour);
  victim_router_.set_alarm_mode(true);
  victim_router_.set_sampling_rate(8);  // 1-in-8 sFlow style
  std::size_t samples = 0;
  victim_router_.set_alarm_sink([&](const AlarmSample&) { ++samples; });
  for (int k = 0; k < 800; ++k) {
    auto p = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp,
                              {std::uint8_t(k), std::uint8_t(k >> 8)});
    EXPECT_EQ(victim_router_.process_inbound(p, now_), Verdict::kPass);
  }
  EXPECT_EQ(victim_router_.stats().in_spoof_sampled, 800u);
  // Expect ~100 reports; allow generous Monte-Carlo slack.
  EXPECT_GT(samples, 50u);
  EXPECT_LT(samples, 180u);
}

TEST_F(RouterPairTest, StatsCountersaccount) {
  invoke_dp_cdp(0, kHour);
  auto good = Ipv4Packet::make(ip("10.0.0.1"), ip("20.1.0.9"), IpProto::kUdp, {});
  auto bad = Ipv4Packet::make(ip("40.0.0.1"), ip("20.1.0.9"), IpProto::kUdp, {});
  peer_router_.process_outbound(good, now_);
  peer_router_.process_outbound(bad, now_);
  EXPECT_EQ(peer_router_.stats().out_processed, 2u);
  EXPECT_EQ(peer_router_.stats().out_stamped, 1u);
  EXPECT_EQ(peer_router_.stats().out_dropped, 1u);
}

TEST(RouterStatsTest, MergeSumsEveryField) {
  RouterStats a;
  a.out_processed = 1;
  a.out_dropped = 2;
  a.out_stamped = 3;
  a.out_too_big = 4;
  a.fragments_stamped = 5;
  a.in_processed = 6;
  a.in_verified = 7;
  a.in_spoof_dropped = 8;
  a.in_spoof_sampled = 9;
  a.in_erased_tolerance = 10;
  a.in_passed_unverified = 11;
  a.icmp_scrubbed = 12;

  RouterStats b;
  b.out_processed = 100;
  b.out_dropped = 200;
  b.out_stamped = 300;
  b.out_too_big = 400;
  b.fragments_stamped = 500;
  b.in_processed = 600;
  b.in_verified = 700;
  b.in_spoof_dropped = 800;
  b.in_spoof_sampled = 900;
  b.in_erased_tolerance = 1000;
  b.in_passed_unverified = 1100;
  b.icmp_scrubbed = 1200;

  RouterStats sum = a;
  sum += b;
  EXPECT_EQ(sum.out_processed, 101u);
  EXPECT_EQ(sum.out_dropped, 202u);
  EXPECT_EQ(sum.out_stamped, 303u);
  EXPECT_EQ(sum.out_too_big, 404u);
  EXPECT_EQ(sum.fragments_stamped, 505u);
  EXPECT_EQ(sum.in_processed, 606u);
  EXPECT_EQ(sum.in_verified, 707u);
  EXPECT_EQ(sum.in_spoof_dropped, 808u);
  EXPECT_EQ(sum.in_spoof_sampled, 909u);
  EXPECT_EQ(sum.in_erased_tolerance, 1010u);
  EXPECT_EQ(sum.in_passed_unverified, 1111u);
  EXPECT_EQ(sum.icmp_scrubbed, 1212u);

  // The free operator+ composes and merging a default adds nothing.
  EXPECT_EQ(a + b, sum);
  EXPECT_EQ(sum + RouterStats{}, sum);
}

}  // namespace
}  // namespace discs

// LpmLookupCache unit tests: hit/miss accounting, invalidate-on-update, the
// time component of function-table keys, and the longest-prefix tie cases
// from tests/lpm/lpm_test.cpp replayed through the cache.
#include "dataplane/lpm_cache.hpp"

#include <gtest/gtest.h>

#include "simkit/event_loop.hpp"

namespace discs {
namespace {

Prefix4 pfx4(const char* text) { return *Prefix4::parse(text); }
Ipv4Address ip4(const char* text) { return *Ipv4Address::parse(text); }
Prefix6 pfx6(const char* text) { return *Prefix6::parse(text); }
Ipv6Address ip6(const char* text) { return *Ipv6Address::parse(text); }

TEST(LpmCacheTest, MissThenHitReturnsSameValue) {
  Pfx2AsTable table;
  table.add(pfx4("10.0.0.0/8"), 100);
  LpmLookupCache cache(64);

  EXPECT_EQ(cache.pfx2as(table, ip4("10.1.2.3")), 100u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);

  EXPECT_EQ(cache.pfx2as(table, ip4("10.1.2.3")), 100u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LpmCacheTest, LongestPrefixTiesMatchDirectLookup) {
  // The nesting exercised in lpm_test.cpp: /8, /16, /24 plus a host route
  // and a default route — cached answers must equal direct LPM answers.
  Pfx2AsTable table;
  table.add(pfx4("0.0.0.0/0"), 1);
  table.add(pfx4("10.0.0.0/8"), 8);
  table.add(pfx4("10.1.0.0/16"), 16);
  table.add(pfx4("10.1.2.0/24"), 24);
  table.add(pfx4("10.1.2.3/32"), 32);
  LpmLookupCache cache(64);

  for (const char* probe : {"10.1.2.3", "10.1.2.4", "10.1.9.1", "10.9.9.9",
                            "11.0.0.1", "255.255.255.255"}) {
    // Twice: once filling, once served from the cache.
    EXPECT_EQ(cache.pfx2as(table, ip4(probe)), table.lookup(ip4(probe))) << probe;
    EXPECT_EQ(cache.pfx2as(table, ip4(probe)), table.lookup(ip4(probe))) << probe;
  }
}

TEST(LpmCacheTest, Ipv6LongestPrefixTiesMatchDirectLookup) {
  Pfx2AsTable table;
  table.add(pfx6("2001:db8::/32"), 32);
  table.add(pfx6("2001:db8:1::/48"), 48);
  table.add(pfx6("2001:db8:1:2::/64"), 64);
  LpmLookupCache cache(64);

  for (const char* probe :
       {"2001:db8:1:2::77", "2001:db8:1:3::1", "2001:db8:9::1", "2001:db9::1"}) {
    EXPECT_EQ(cache.pfx2as(table, ip6(probe)), table.lookup(ip6(probe))) << probe;
    EXPECT_EQ(cache.pfx2as(table, ip6(probe)), table.lookup(ip6(probe))) << probe;
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(LpmCacheTest, StaleUntilInvalidatedThenFresh) {
  Pfx2AsTable table;
  table.add(pfx4("10.0.0.0/8"), 100);
  LpmLookupCache cache(64);
  EXPECT_EQ(cache.pfx2as(table, ip4("10.1.2.3")), 100u);

  // A more specific prefix lands in the table behind the cache's back: the
  // cache keeps serving the old answer (that's the documented contract)...
  table.add(pfx4("10.1.0.0/16"), 200);
  EXPECT_EQ(cache.pfx2as(table, ip4("10.1.2.3")), 100u);

  // ...until the owner of the update invalidates it.
  cache.invalidate();
  EXPECT_EQ(cache.pfx2as(table, ip4("10.1.2.3")), 200u);
}

TEST(LpmCacheTest, FunctionLookupKeyedByTableAndTime) {
  FunctionTable in_dst(/*tolerance=*/0);
  in_dst.install(pfx4("20.0.0.0/8"), DefenseFunction::kCdpVerify, 100, 200);
  LpmLookupCache cache(64);

  const auto t150 = cache.functions(LpmLookupCache::Table::kInDst, in_dst,
                                    ip4("20.0.0.1"), 150);
  EXPECT_TRUE(has_function(t150.functions, DefenseFunction::kCdpVerify));

  // Same address at a different time is a distinct key: the window has
  // closed and the cache must not replay the t=150 answer.
  const auto t250 = cache.functions(LpmLookupCache::Table::kInDst, in_dst,
                                    ip4("20.0.0.1"), 250);
  EXPECT_FALSE(has_function(t250.functions, DefenseFunction::kCdpVerify));

  // Same address, same time, *different table id* must also miss.
  FunctionTable in_src(/*tolerance=*/0);
  const auto other = cache.functions(LpmLookupCache::Table::kInSrc, in_src,
                                     ip4("20.0.0.1"), 150);
  EXPECT_EQ(other.functions, 0);
}

TEST(LpmCacheTest, FunctionInvalidateOnDeploy) {
  FunctionTable out_dst(/*tolerance=*/0);
  LpmLookupCache cache(64);
  const SimTime now = 50;

  EXPECT_EQ(cache
                .functions(LpmLookupCache::Table::kOutDst, out_dst,
                           ip4("20.0.0.1"), now)
                .functions,
            0);

  out_dst.install(pfx4("20.0.0.0/8"), DefenseFunction::kDp, 0, 1000);
  cache.invalidate();
  EXPECT_TRUE(has_function(cache
                               .functions(LpmLookupCache::Table::kOutDst,
                                          out_dst, ip4("20.0.0.1"), now)
                               .functions,
                           DefenseFunction::kDp));
}

TEST(LpmCacheTest, SingleSlotCacheEvictsButStaysCorrect) {
  Pfx2AsTable table;
  table.add(pfx4("10.0.0.0/8"), 10);
  table.add(pfx4("20.0.0.0/8"), 20);
  LpmLookupCache cache(1);
  ASSERT_EQ(cache.slot_count(), 1u);

  // Alternating addresses thrash the single slot; answers stay correct.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(cache.pfx2as(table, ip4("10.0.0.1")), 10u);
    EXPECT_EQ(cache.pfx2as(table, ip4("20.0.0.1")), 20u);
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 16u);
}

TEST(LpmCacheTest, V4AndV6KeysDoNotCollide) {
  // An IPv6 address whose 16 bytes encode the same (lo, hi) key words as an
  // IPv4 address must not be confused with it (the is_v6 discriminator):
  // 0:0:a00:1:: has key_lo == 0x0a000001 == 10.0.0.1 and key_hi == 0.
  Pfx2AsTable table;
  table.add(pfx4("10.0.0.0/8"), 4);
  table.add(pfx6("::/0"), 6);
  LpmLookupCache cache(64);
  EXPECT_EQ(cache.pfx2as(table, ip4("10.0.0.1")), 4u);
  EXPECT_EQ(cache.pfx2as(table, ip6("0:0:a00:1::")), 6u);
  EXPECT_EQ(cache.pfx2as(table, ip4("10.0.0.1")), 4u);
  EXPECT_EQ(cache.stats().misses, 2u);  // the v6 probe evicted nothing
}

TEST(LpmCacheTest, SlotCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(LpmLookupCache(1).slot_count(), 1u);
  EXPECT_EQ(LpmLookupCache(3).slot_count(), 4u);
  EXPECT_EQ(LpmLookupCache(1000).slot_count(), 1024u);
}

}  // namespace
}  // namespace discs

// Unit tests for the bounded SPSC work ring: capacity rounding, FIFO order
// through many index wraparounds, full/empty edge transitions, and a
// producer/consumer stress run (the TSan CI job builds this binary, so the
// release/acquire publication contract is machine-checked too).
#include "dataplane/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace discs {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwoMinimumTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRingTest, FullAndEmptyTransitions) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);

  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "push must fail on a full ring";
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.empty());

  int out = -1;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4)) << "one free slot after one pop";
  for (const int expect : {1, 2, 3, 4}) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(ring.try_pop(out)) << "pop must fail on an empty ring";
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, FifoOrderSurvivesManyWraparounds) {
  SpscRing<std::uint32_t> ring(4);
  std::uint32_t next_push = 0, next_pop = 0;
  // Irregular push/pop bursts walk the indices through thousands of
  // wraparounds; order and content must be preserved throughout.
  for (int round = 0; round < 10'000; ++round) {
    const int burst = 1 + round % 4;
    for (int i = 0; i < burst; ++i) {
      if (ring.try_push(next_push)) ++next_push;
    }
    for (int i = 0; i < 1 + (round % 3); ++i) {
      std::uint32_t out = 0;
      if (!ring.try_pop(out)) break;
      ASSERT_EQ(out, next_pop) << "round " << round;
      ++next_pop;
    }
  }
  std::uint32_t out = 0;
  while (ring.try_pop(out)) {
    ASSERT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_GT(next_push, 10'000u);
}

TEST(SpscRingTest, TwoThreadStressKeepsEveryItemExactlyOnce) {
  constexpr std::uint32_t kItems = 200'000;
  SpscRing<std::uint32_t> ring(8);
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kItems;) {
      if (ring.try_push(i)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  // Consumer on this thread: values must arrive complete, in order.
  std::uint32_t expect = 0;
  while (expect < kItems) {
    std::uint32_t out = 0;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace discs

// Data-plane property suites:
//  * stamp/verify invariants under randomized packets and keys,
//  * tuple generation fuzz against an independent reference predicate,
//  * the full outbound+inbound pipeline preserving genuine traffic.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataplane/router.hpp"

namespace discs {
namespace {

class StampProperty : public ::testing::TestWithParam<std::uint64_t> {};

Ipv4Packet random_packet(Xoshiro256& rng) {
  auto p = Ipv4Packet::make(
      Ipv4Address(static_cast<std::uint32_t>(rng.next())),
      Ipv4Address(static_cast<std::uint32_t>(rng.next())), IpProto::kUdp,
      std::vector<std::uint8_t>(rng.below(32)));
  for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next());
  p.header.flags = static_cast<std::uint8_t>(rng.below(8));
  p.header.refresh_checksum();
  return p;
}

TEST_P(StampProperty, StampThenVerifyAlwaysValidAndChecksumSafe) {
  Xoshiro256 rng(GetParam());
  const AesCmac mac(derive_key128(GetParam()));
  for (int k = 0; k < 300; ++k) {
    auto p = random_packet(rng);
    const auto flags_before = p.header.flags;
    ipv4_stamp(p, mac);
    EXPECT_TRUE(p.checksum_valid());
    EXPECT_EQ(p.header.flags, flags_before);
    EXPECT_EQ(ipv4_verify(p, mac, nullptr, rng), VerifyResult::kValid);
    EXPECT_TRUE(p.checksum_valid());
  }
}

TEST_P(StampProperty, WrongKeyAlmostNeverVerifies) {
  Xoshiro256 rng(GetParam() ^ 1);
  const AesCmac good(derive_key128(GetParam()));
  const AesCmac bad(derive_key128(GetParam() + 1000));
  int false_accepts = 0;
  for (int k = 0; k < 1000; ++k) {
    auto p = random_packet(rng);
    ipv4_stamp(p, good);
    false_accepts += ipv4_verify(p, bad, nullptr, rng) == VerifyResult::kValid;
  }
  // Chance per packet is 2^-29; over 1000 packets effectively zero.
  EXPECT_EQ(false_accepts, 0);
}

TEST_P(StampProperty, HeaderMutationInvalidatesMark) {
  Xoshiro256 rng(GetParam() ^ 2);
  const AesCmac mac(derive_key128(GetParam()));
  for (int k = 0; k < 200; ++k) {
    auto p = random_packet(rng);
    if (p.payload.empty()) continue;
    ipv4_stamp(p, mac);
    // Mutate a MAC-covered field (destination address).
    p.header.dst = Ipv4Address(p.header.dst.bits() ^ 0x1);
    p.header.refresh_checksum();
    EXPECT_EQ(ipv4_verify(p, mac, nullptr, rng), VerifyResult::kInvalid);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StampProperty, ::testing::Values(3, 9, 27, 81));

// Reference predicate for tuple generation, written independently of the
// production lookup order (direct reimplementation of §V-B prose).
struct Reference {
  const RouterTables& t;
  AsNumber local;

  bool drop(Ipv4Address s, Ipv4Address d, SimTime now) const {
    const bool sp = has_function(t.out_src.lookup(s, now).functions,
                                 DefenseFunction::kSp);
    const bool dp = has_function(t.out_dst.lookup(d, now).functions,
                                 DefenseFunction::kDp);
    return (sp || dp) && t.pfx2as.lookup(s) != local;
  }
  bool stamp(Ipv4Address s, Ipv4Address d, SimTime now) const {
    if (drop(s, d, now)) return false;
    const bool key = t.key_s.find(t.pfx2as.lookup(d)) != nullptr;
    const bool csp = has_function(t.out_src.lookup(s, now).functions,
                                  DefenseFunction::kCspStamp) && key;
    const bool cdp = has_function(t.out_dst.lookup(d, now).functions,
                                  DefenseFunction::kCdpStamp);
    return (csp || cdp) && key;
  }
  bool verify(Ipv4Address s, Ipv4Address d, SimTime now) const {
    return has_function(t.in_src.lookup(s, now).functions,
                        DefenseFunction::kCspVerify) ||
           has_function(t.in_dst.lookup(d, now).functions,
                        DefenseFunction::kCdpVerify);
  }
};

class TupleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TupleFuzz, GeneratorAgreesWithReferencePredicate) {
  Xoshiro256 rng(GetParam());
  RouterTables tables;
  const AsNumber local = 1 + static_cast<AsNumber>(rng.below(8));

  // Random table contents: 24 prefixes over a small address space so
  // collisions and nestings are frequent.
  for (int k = 0; k < 24; ++k) {
    const unsigned len = 8 + static_cast<unsigned>(rng.below(17));
    const Prefix4 prefix(Ipv4Address(static_cast<std::uint32_t>(rng.next()) & 0x0fffffff),
                         len);
    const AsNumber as = 1 + static_cast<AsNumber>(rng.below(8));
    tables.pfx2as.add(prefix, as);
    switch (rng.below(6)) {
      case 0: tables.out_src.install(prefix, DefenseFunction::kSp, 0, 1000); break;
      case 1: tables.out_src.install(prefix, DefenseFunction::kCspStamp, 0, 1000); break;
      case 2: tables.out_dst.install(prefix, DefenseFunction::kDp, 0, 1000); break;
      case 3: tables.out_dst.install(prefix, DefenseFunction::kCdpStamp, 0, 1000); break;
      case 4: tables.in_src.install(prefix, DefenseFunction::kCspVerify, 0, 1000); break;
      case 5: tables.in_dst.install(prefix, DefenseFunction::kCdpVerify, 0, 1000); break;
    }
  }
  for (AsNumber as = 1; as <= 8; ++as) {
    if (rng.chance(0.6)) tables.key_s.set_key(as, derive_key128(as));
    if (rng.chance(0.6)) tables.key_v.set_key(as, derive_key128(100 + as));
  }

  const TupleGenerator gen(tables, local);
  const Reference ref{tables, local};
  const SimTime now = 500;
  for (int probe = 0; probe < 3000; ++probe) {
    const Ipv4Address s(static_cast<std::uint32_t>(rng.next()) & 0x0fffffff);
    const Ipv4Address d(static_cast<std::uint32_t>(rng.next()) & 0x0fffffff);
    const auto out = gen.out_tuple(s, d, now);
    EXPECT_EQ(out.drop, ref.drop(s, d, now)) << s.to_string() << " " << d.to_string();
    EXPECT_EQ(out.stamp, ref.stamp(s, d, now)) << s.to_string() << " " << d.to_string();
    if (out.stamp) {
      EXPECT_NE(out.key_s, nullptr);
    }

    const auto in = gen.in_tuple(s, d, now);
    EXPECT_EQ(in.verify, ref.verify(s, d, now));
    if (in.verify) {
      const AsNumber src_as = tables.pfx2as.lookup(s);
      EXPECT_EQ(in.key_v != nullptr, tables.key_v.find(src_as) != nullptr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleFuzz, ::testing::Values(2, 4, 6, 8, 10));

// End-to-end invariant: genuine traffic between two cooperating routers is
// never dropped, whatever random subset of functions is invoked.
class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, GenuineTrafficSurvivesAnyFunctionMix) {
  Xoshiro256 rng(GetParam());
  RouterTables peer_tables, victim_tables;
  auto fill = [](Pfx2AsTable& t) {
    t.add(*Prefix4::parse("10.0.0.0/8"), 100);
    t.add(*Prefix4::parse("20.0.0.0/8"), 200);
  };
  fill(peer_tables.pfx2as);
  fill(victim_tables.pfx2as);
  const Key128 k_pv = derive_key128(1), k_vp = derive_key128(2);
  peer_tables.key_s.set_key(200, k_pv);
  victim_tables.key_v.set_key(100, k_pv);
  victim_tables.key_s.set_key(100, k_vp);
  peer_tables.key_v.set_key(200, k_vp);

  const auto victim_net = *Prefix4::parse("20.0.0.0/8");
  // Random invocation mix (DP/CDP protecting 20/8 at the peer, verify at
  // the victim; SP/CSP in the reverse orientation).
  if (rng.chance(0.5)) {
    peer_tables.out_dst.install(victim_net, DefenseFunction::kDp, 0, kHour);
  }
  const bool cdp = rng.chance(0.7);
  if (cdp) {
    peer_tables.out_dst.install(victim_net, DefenseFunction::kCdpStamp, 0, kHour);
    victim_tables.in_dst.install(victim_net, DefenseFunction::kCdpVerify, 0, kHour);
  }
  if (rng.chance(0.5)) {
    peer_tables.out_src.install(victim_net, DefenseFunction::kSp, 0, kHour);
  }
  BorderRouter peer(peer_tables, 100, GetParam());
  BorderRouter victim(victim_tables, 200, GetParam() + 1);

  const SimTime now = kMinute;  // past the tolerance interval
  for (int k = 0; k < 300; ++k) {
    auto p = Ipv4Packet::make(
        Ipv4Address(0x0a000000 | (static_cast<std::uint32_t>(rng.next()) & 0xffffff)),
        Ipv4Address(0x14000000 | (static_cast<std::uint32_t>(rng.next()) & 0xffffff)),
        IpProto::kUdp, std::vector<std::uint8_t>(rng.below(16)));
    ASSERT_EQ(peer.process_outbound(p, now), Verdict::kPass);
    ASSERT_EQ(victim.process_inbound(p, now), Verdict::kPass);
    EXPECT_TRUE(p.checksum_valid());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace discs

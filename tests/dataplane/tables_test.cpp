#include "dataplane/tables.hpp"

#include <gtest/gtest.h>

namespace discs {
namespace {

Prefix4 pfx(const char* text) { return *Prefix4::parse(text); }
Ipv4Address ip(const char* text) { return *Ipv4Address::parse(text); }

TEST(Pfx2AsTableTest, LongestPrefixWins) {
  Pfx2AsTable t;
  t.add(pfx("10.0.0.0/8"), 1);
  t.add(pfx("10.1.0.0/16"), 2);
  EXPECT_EQ(t.lookup(ip("10.1.2.3")), 2u);
  EXPECT_EQ(t.lookup(ip("10.2.2.3")), 1u);
  EXPECT_EQ(t.lookup(ip("11.0.0.1")), kNoAs);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Pfx2AsTableTest, SupportsIpv6) {
  Pfx2AsTable t;
  t.add(*Prefix6::parse("2001:db8::/32"), 7);
  EXPECT_EQ(t.lookup(*Ipv6Address::parse("2001:db8::1")), 7u);
  EXPECT_EQ(t.lookup(*Ipv6Address::parse("2001:db9::1")), kNoAs);
}

TEST(KeyTableTest, SetAndFind) {
  KeyTable t;
  t.set_key(9, derive_key128(1));
  const auto* entry = t.find(9);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->active, derive_key128(1));
  EXPECT_FALSE(entry->previous.has_value());
  EXPECT_EQ(t.find(10), nullptr);
  EXPECT_TRUE(t.has_key(9));
}

TEST(KeyTableTest, RekeyRetainsPreviousUntilFinished) {
  KeyTable t;
  t.set_key(9, derive_key128(1));
  t.set_key(9, derive_key128(2));
  const auto* entry = t.find(9);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->active, derive_key128(2));
  ASSERT_TRUE(entry->previous.has_value());
  EXPECT_EQ(*entry->previous, derive_key128(1));
  ASSERT_TRUE(entry->previous_mac.has_value());

  t.finish_rekey(9);
  EXPECT_FALSE(t.find(9)->previous.has_value());
  EXPECT_FALSE(t.find(9)->previous_mac.has_value());
}

TEST(KeyTableTest, SetKeyWithoutRetentionDropsGraceKey) {
  KeyTable t;
  t.set_key(9, derive_key128(1));
  t.set_key(9, derive_key128(2), /*retain_previous=*/false);
  EXPECT_FALSE(t.find(9)->previous.has_value());
}

TEST(KeyTableTest, EraseRemovesPeer) {
  KeyTable t;
  t.set_key(9, derive_key128(1));
  t.erase(9);
  EXPECT_EQ(t.find(9), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

TEST(KeyTableTest, CachedMacMatchesFreshContext) {
  KeyTable t;
  const auto key = derive_key128(42);
  t.set_key(9, key);
  const std::vector<std::uint8_t> msg{1, 2, 3};
  EXPECT_EQ(t.find(9)->active_mac.mac(msg), AesCmac(key).mac(msg));
}

TEST(FunctionTableTest, WindowGatesActivation) {
  FunctionTable t(/*tolerance=*/0);
  t.install(pfx("10.0.0.0/16"), DefenseFunction::kDp, 100, 200);
  EXPECT_EQ(t.lookup(ip("10.0.1.1"), 50).functions, 0);
  EXPECT_TRUE(has_function(t.lookup(ip("10.0.1.1"), 100).functions,
                           DefenseFunction::kDp));
  EXPECT_TRUE(has_function(t.lookup(ip("10.0.1.1"), 199).functions,
                           DefenseFunction::kDp));
  EXPECT_EQ(t.lookup(ip("10.0.1.1"), 200).functions, 0);  // end exclusive
  EXPECT_EQ(t.lookup(ip("10.1.0.1"), 150).functions, 0);  // other prefix
}

TEST(FunctionTableTest, CoveringPrefixesUnion) {
  FunctionTable t(0);
  t.install(pfx("10.0.0.0/8"), DefenseFunction::kDp, 0, 1000);
  t.install(pfx("10.1.0.0/16"), DefenseFunction::kCdpStamp, 0, 1000);
  const auto match = t.lookup(ip("10.1.2.3"), 500);
  EXPECT_TRUE(has_function(match.functions, DefenseFunction::kDp));
  EXPECT_TRUE(has_function(match.functions, DefenseFunction::kCdpStamp));
  // Outside the nested /16 only DP applies.
  EXPECT_EQ(t.lookup(ip("10.2.0.1"), 500).functions,
            to_mask(DefenseFunction::kDp));
}

TEST(FunctionTableTest, OverlappingWindowsMerge) {
  FunctionTable t(0);
  t.install(pfx("10.0.0.0/16"), DefenseFunction::kSp, 100, 200);
  t.install(pfx("10.0.0.0/16"), DefenseFunction::kSp, 150, 400);  // re-invoke
  EXPECT_EQ(t.window_count(), 1u);
  EXPECT_TRUE(has_function(t.lookup(ip("10.0.0.1"), 399).functions,
                           DefenseFunction::kSp));
}

TEST(FunctionTableTest, DisjointWindowsCoexist) {
  FunctionTable t(0);
  t.install(pfx("10.0.0.0/16"), DefenseFunction::kSp, 100, 200);
  t.install(pfx("10.0.0.0/16"), DefenseFunction::kSp, 300, 400);
  EXPECT_EQ(t.window_count(), 2u);
  EXPECT_EQ(t.lookup(ip("10.0.0.1"), 250).functions, 0);
  EXPECT_TRUE(has_function(t.lookup(ip("10.0.0.1"), 350).functions,
                           DefenseFunction::kSp));
}

TEST(FunctionTableTest, ToleranceIntervalsFlagEraseOnly) {
  FunctionTable t(/*tolerance=*/10);
  t.install(pfx("10.0.0.0/16"), DefenseFunction::kCdpVerify, 100, 200);
  EXPECT_TRUE(t.lookup(ip("10.0.0.1"), 105).erase_only);   // head interval
  EXPECT_FALSE(t.lookup(ip("10.0.0.1"), 150).erase_only);  // steady state
  EXPECT_TRUE(t.lookup(ip("10.0.0.1"), 195).erase_only);   // tail interval
}

TEST(FunctionTableTest, ToleranceOnlyAppliesToCryptoVerify) {
  FunctionTable t(10);
  t.install(pfx("10.0.0.0/16"), DefenseFunction::kDp, 100, 200);
  EXPECT_FALSE(t.lookup(ip("10.0.0.1"), 105).erase_only);
}

TEST(FunctionTableTest, ExpireDropsFinishedWindows) {
  FunctionTable t(0);
  t.install(pfx("10.0.0.0/16"), DefenseFunction::kDp, 100, 200);
  t.install(pfx("10.0.0.0/16"), DefenseFunction::kSp, 100, 500);
  t.expire(300);
  EXPECT_EQ(t.window_count(), 1u);
  EXPECT_TRUE(has_function(t.lookup(ip("10.0.0.1"), 400).functions,
                           DefenseFunction::kSp));
}

TEST(FunctionTableTest, Ipv6PrefixesSupported) {
  FunctionTable t(0);
  t.install(*Prefix6::parse("2001:db8::/32"), DefenseFunction::kCspVerify, 0, 100);
  EXPECT_TRUE(has_function(
      t.lookup(*Ipv6Address::parse("2001:db8::5"), 50).functions,
      DefenseFunction::kCspVerify));
  EXPECT_EQ(t.lookup(*Ipv6Address::parse("2001:db9::5"), 50).functions, 0);
}

TEST(FunctionSetTest, MaskHelpers) {
  FunctionSet set = 0;
  set |= to_mask(DefenseFunction::kDp);
  set |= to_mask(DefenseFunction::kCspStamp);
  EXPECT_TRUE(has_function(set, DefenseFunction::kDp));
  EXPECT_TRUE(has_function(set, DefenseFunction::kCspStamp));
  EXPECT_FALSE(has_function(set, DefenseFunction::kSp));
}

}  // namespace
}  // namespace discs

// TableTransaction semantics: batched atomic application, epoch stamping,
// duration-relative windows, and the sealed-tables writer discipline.
#include "dataplane/transaction.hpp"

#include <gtest/gtest.h>

#include "crypto/cmac.hpp"
#include "dataplane/engine.hpp"

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }
Ipv4Address ip(const char* t) { return *Ipv4Address::parse(t); }

TEST(TableTransactionTest, AppliesAllOpsAtomicallyAndBumpsEpochOnce) {
  RouterTables tables;
  EXPECT_EQ(tables.applied_epoch(), 0u);

  TableTransaction txn;
  txn.map_prefix(pfx("10.0.0.0/8"), 100)
      .set_stamp_key(200, derive_key128(1))
      .set_verify_key(200, derive_key128(2))
      .install_function(FunctionDirection::kOutDst, AnyPrefix(pfx("10.1.0.0/16")),
                        DefenseFunction::kDp, kHour);
  EXPECT_EQ(txn.size(), 4u);
  EXPECT_FALSE(txn.empty());

  const TableEpoch epoch = txn.apply(tables, 5 * kSecond);
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(tables.applied_epoch(), 1u);

  EXPECT_EQ(tables.pfx2as.lookup(ip("10.9.9.9")), 100u);
  EXPECT_TRUE(tables.key_s.has_key(200));
  EXPECT_TRUE(tables.key_v.has_key(200));
  // Duration-relative window resolves against apply-time `now`.
  EXPECT_NE(tables.out_dst.lookup(ip("10.1.0.1"), 5 * kSecond + kMinute).functions,
            0);
  EXPECT_EQ(tables.out_dst.lookup(ip("10.1.0.1"), 5 * kSecond + 2 * kHour).functions,
            0);
}

TEST(TableTransactionTest, EpochIsMonotonicAcrossTransactions) {
  RouterTables tables;
  for (TableEpoch expected = 1; expected <= 5; ++expected) {
    TableTransaction txn;
    txn.set_stamp_key(expected, derive_key128(expected));
    EXPECT_EQ(txn.apply(tables, 0), expected);
  }
  EXPECT_EQ(tables.applied_epoch(), 5u);
  // Even an empty transaction is an observable table generation.
  EXPECT_EQ(TableTransaction{}.apply(tables, 0), 6u);
}

TEST(TableTransactionTest, RekeyOpsKeepAndDropGraceKey) {
  RouterTables tables;
  const Key128 old_key = derive_key128(7);
  const Key128 new_key = derive_key128(8);

  TableTransaction install;
  install.set_verify_key(300, old_key);
  install.apply(tables, 0);

  TableTransaction rekey;
  rekey.set_verify_key(300, new_key, /*retain_previous=*/true);
  rekey.apply(tables, kSecond);
  ASSERT_NE(tables.key_v.find(300), nullptr);
  EXPECT_EQ(tables.key_v.find(300)->active, new_key);
  ASSERT_TRUE(tables.key_v.find(300)->previous.has_value());
  EXPECT_EQ(*tables.key_v.find(300)->previous, old_key);

  TableTransaction finish;
  finish.finish_rekey(300);
  finish.apply(tables, 3 * kSecond);
  EXPECT_FALSE(tables.key_v.find(300)->previous.has_value());
}

TEST(TableTransactionTest, ErasePeerAndClearKeysHitBothTables) {
  RouterTables tables;
  TableTransaction setup;
  setup.set_stamp_key(1, derive_key128(1))
      .set_verify_key(1, derive_key128(2))
      .set_stamp_key(2, derive_key128(3))
      .set_verify_key(2, derive_key128(4));
  setup.apply(tables, 0);

  TableTransaction erase;
  erase.erase_peer(1);
  erase.apply(tables, 0);
  EXPECT_FALSE(tables.key_s.has_key(1));
  EXPECT_FALSE(tables.key_v.has_key(1));
  EXPECT_TRUE(tables.key_s.has_key(2));

  TableTransaction wipe;
  wipe.clear_keys();
  wipe.apply(tables, 0);
  EXPECT_EQ(tables.key_s.size(), 0u);
  EXPECT_EQ(tables.key_v.size(), 0u);
}

TEST(TableTransactionTest, ExpireFunctionsRemovesLapsedWindows) {
  RouterTables tables;
  TableTransaction install;
  install
      .install_function_window(FunctionDirection::kInDst,
                               AnyPrefix(pfx("10.0.0.0/8")),
                               DefenseFunction::kCdpVerify, 0, kMinute)
      .install_function_window(FunctionDirection::kInDst,
                               AnyPrefix(pfx("20.0.0.0/8")),
                               DefenseFunction::kCdpVerify, 0, kHour);
  install.apply(tables, 0);
  EXPECT_EQ(tables.in_dst.window_count(), 2u);

  TableTransaction sweep;
  sweep.expire_functions();
  sweep.apply(tables, 2 * kMinute);
  EXPECT_EQ(tables.in_dst.window_count(), 1u);  // only the kHour window left
}

TEST(TableTransactionTest, MaxRelativeEndAndInstallIntrospection) {
  TableTransaction txn;
  EXPECT_EQ(txn.max_relative_end(), 0u);
  EXPECT_FALSE(txn.installs_functions());

  txn.install_function(FunctionDirection::kInSrc, AnyPrefix(pfx("10.0.0.0/8")),
                       DefenseFunction::kCspVerify, kMinute);
  txn.install_function(FunctionDirection::kOutSrc, AnyPrefix(pfx("10.0.0.0/8")),
                       DefenseFunction::kCspStamp, kHour);
  // Absolute windows don't contribute: their expiry is the caller's problem.
  txn.install_function_window(FunctionDirection::kOutDst,
                              AnyPrefix(pfx("10.0.0.0/8")), DefenseFunction::kDp,
                              0, 10 * kHour);
  EXPECT_EQ(txn.max_relative_end(), kHour);
  EXPECT_TRUE(txn.installs_functions());
}

TEST(TableTransactionTest, Ipv6PrefixesRouteToTheRightTables) {
  RouterTables tables;
  const Prefix6 p6 = *Prefix6::parse("2001:db8::/32");
  TableTransaction txn;
  txn.map_prefix(p6, 900).install_function(
      FunctionDirection::kInDst, AnyPrefix(p6), DefenseFunction::kCdpVerify,
      kHour);
  txn.apply(tables, 0);
  const Ipv6Address addr = *Ipv6Address::parse("2001:db8::1");
  EXPECT_EQ(tables.pfx2as.lookup(addr), 900u);
  EXPECT_NE(tables.in_dst.lookup(addr, kMinute).functions, 0);
}

TEST(TableTransactionTest, SealedTablesStillAcceptTransactions) {
  RouterTables tables;
  tables.seal();
  ASSERT_TRUE(tables.sealed());
  TableTransaction txn;
  txn.set_stamp_key(7, derive_key128(7));
  EXPECT_EQ(txn.apply(tables, 0), 1u);
  EXPECT_TRUE(tables.key_s.has_key(7));
}

using TableWriteGuardDeathTest = ::testing::Test;

TEST(TableWriteGuardDeathTest, DirectWriteToSealedTablesAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RouterTables tables;
  tables.seal();
  EXPECT_DEATH(tables.key_s.set_key(1, derive_key128(1)), "sealed");
  EXPECT_DEATH(tables.pfx2as.add(pfx("10.0.0.0/8"), 1), "sealed");
  EXPECT_DEATH(
      tables.in_dst.install(pfx("10.0.0.0/8"), DefenseFunction::kCdpVerify, 0,
                            kHour),
      "sealed");
  EXPECT_DEATH(tables.in_dst.expire(0), "sealed");
}

TEST(TableWriteGuardDeathTest, UnsealedTablesMutateFreely) {
  RouterTables tables;  // test fixtures and benches rely on this
  tables.key_s.set_key(1, derive_key128(1));
  tables.pfx2as.add(pfx("10.0.0.0/8"), 1);
  tables.in_dst.install(pfx("10.0.0.0/8"), DefenseFunction::kCdpVerify, 0, kHour);
  EXPECT_TRUE(tables.key_s.has_key(1));
}

TEST(TableTransactionTest, EngineAppliesTransactionUnderWriterLock) {
  RouterTables tables;
  tables.pfx2as.add(pfx("10.0.0.0/8"), 100);
  tables.seal();
  DataPlaneEngine engine(tables, 100);

  TableTransaction txn;
  txn.install_function(FunctionDirection::kOutDst, AnyPrefix(pfx("10.0.0.0/8")),
                       DefenseFunction::kDp, kHour);
  const TableEpoch epoch = engine.apply(txn, kSecond);
  EXPECT_EQ(epoch, tables.applied_epoch());

  // The installed function is live for batches immediately after apply.
  PacketBatch batch;
  batch.add(Ipv4Packet::make(ip("20.0.0.1"), ip("10.0.0.5"), IpProto::kUdp, {}));
  const auto verdicts = engine.process_outbound(batch, kSecond + kMinute);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0], Verdict::kDropFiltered);  // src not local under kDp
}

}  // namespace
}  // namespace discs

// Determinism regression: same seed + same batch stream ⇒ byte-identical
// results across two independent engine runs at four workers. This pins
// three properties the rework must not lose:
//  * the flow-hash partition and per-shard processing order are functions of
//    the input alone (no timing-dependent work stealing);
//  * the chunk autotuner feeds on occupancy only — never on wall-clock — so
//    chunk boundaries are reproducible;
//  * per-shard RNG streams advance identically, making RouterStats AND the
//    sampled flow-report ring (a NetFlow-style RingBuffer with eviction)
//    equal field-for-field between runs.
#include "dataplane/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "telemetry/ring.hpp"

namespace discs {
namespace {

constexpr AsNumber kPeerAs = 100;
constexpr AsNumber kVictimAs = 200;

struct Env {
  RouterTables victim;
  RouterTables peer;

  Env() {
    auto fill = [](Pfx2AsTable& t) {
      t.add(*Prefix4::parse("10.0.0.0/8"), kPeerAs);
      t.add(*Prefix4::parse("20.0.0.0/8"), kVictimAs);
      t.add(*Prefix6::parse("2001:db8:aaaa::/48"), kPeerAs);
      t.add(*Prefix6::parse("2001:db8:bbbb::/48"), kVictimAs);
    };
    fill(victim.pfx2as);
    fill(peer.pfx2as);
    const Key128 key = derive_key128(1);
    peer.key_s.set_key(kVictimAs, key);
    victim.key_v.set_key(kPeerAs, key);
    peer.out_dst.install(*Prefix4::parse("20.0.0.0/8"),
                         DefenseFunction::kCdpStamp, 0, kHour);
    victim.in_dst.install(*Prefix4::parse("20.0.0.0/8"),
                          DefenseFunction::kCdpVerify, 0, kHour);
    victim.in_dst.install(*Prefix6::parse("2001:db8:bbbb::/48"),
                          DefenseFunction::kCdpVerify, 0, kHour);
  }
};

Ipv4Address rand4(Xoshiro256& rng, std::uint32_t net) {
  return Ipv4Address(net | (static_cast<std::uint32_t>(rng.next()) & 0xffffff));
}

Ipv6Address rand6(Xoshiro256& rng, std::uint16_t site) {
  return Ipv6Address::from_groups(
      {0x2001, 0xdb8, site, static_cast<std::uint16_t>(rng.below(0xffff)), 0, 0,
       0, static_cast<std::uint16_t>(rng.below(0xffff))});
}

struct RunResult {
  std::vector<Verdict> verdicts;
  RouterStats stats;
  std::vector<FlowReport> flow_ring;  // snapshot after eviction
  std::uint64_t flow_total = 0;       // reports ever pushed (incl. evicted)
  std::size_t chunk_hint = 0;         // autotuner end state
};

// One full run: a fresh w4 engine in alarm mode with 1-in-4 sampling (the
// RNG-drawing path) fed the same seed-derived batch stream, flow reports
// landing in a 64-slot ring so eviction order matters too.
RunResult run_once(std::uint64_t seed) {
  Env env;
  EngineConfig config;
  config.shards = 4;
  config.rng_seed = 9;
  DataPlaneEngine engine(env.victim, kVictimAs, config);
  engine.set_alarm_mode(true);
  engine.set_sampling_rate(4);

  RunResult result;
  telemetry::RingBuffer<FlowReport> ring(64);
  engine.set_flow_sink([&](const FlowReport& r) { ring.push(r); });

  BorderRouter stamper(env.peer, kPeerAs, 3);
  Xoshiro256 rng(seed);
  constexpr SimTime kNow = kMinute;
  for (int b = 0; b < 20; ++b) {
    PacketBatch batch;
    for (std::size_t i = 0; i < 512; ++i) {
      if (rng.chance(0.3)) {
        // Unverifiable v6 claiming a peer source: spoofed, feeds sampling.
        batch.add(Ipv6Packet::make(rand6(rng, 0xaaaa), rand6(rng, 0xbbbb), 17,
                                   std::vector<std::uint8_t>(16)));
      } else if (rng.chance(0.5)) {
        Ipv4Packet p = Ipv4Packet::make(rand4(rng, 0x0a000000u),
                                        rand4(rng, 0x14000000u), IpProto::kUdp,
                                        std::vector<std::uint8_t>(16));
        (void)stamper.process_outbound(p, kNow);  // genuine
        batch.add(std::move(p));
      } else {
        batch.add(Ipv4Packet::make(rand4(rng, 0x0a000000u),
                                   rand4(rng, 0x14000000u), IpProto::kUdp,
                                   std::vector<std::uint8_t>(16)));  // spoofed
      }
    }
    const std::vector<Verdict> verdicts = engine.process_inbound(batch, kNow);
    result.verdicts.insert(result.verdicts.end(), verdicts.begin(),
                           verdicts.end());
  }
  result.stats = engine.stats();
  result.flow_ring = ring.snapshot();
  result.flow_total = ring.total();
  result.chunk_hint = engine.chunk_hint();
  return result;
}

TEST(EngineDeterminismTest, TwoRunsAtW4AreByteIdentical) {
  const RunResult a = run_once(2024);
  const RunResult b = run_once(2024);

  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    ASSERT_EQ(a.verdicts[i], b.verdicts[i]) << "packet " << i;
  }
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.chunk_hint, b.chunk_hint);

  // The sampled flow-report ring matched report-for-report: same packets
  // sampled (same RNG draws), same eviction order, every field equal.
  EXPECT_EQ(a.flow_total, b.flow_total);
  ASSERT_EQ(a.flow_ring.size(), b.flow_ring.size());
  for (std::size_t i = 0; i < a.flow_ring.size(); ++i) {
    ASSERT_TRUE(a.flow_ring[i] == b.flow_ring[i]) << "flow report " << i;
  }
  // Sampling actually engaged: reports flowed and the ring wrapped.
  EXPECT_GT(a.flow_total, 64u);
  EXPECT_EQ(a.flow_ring.size(), 64u);
}

// A different seed must actually change the stream — guards against the
// helper accidentally pinning its own inputs.
TEST(EngineDeterminismTest, DifferentSeedsDiverge) {
  const RunResult a = run_once(2024);
  const RunResult b = run_once(4048);
  EXPECT_FALSE(a.stats == b.stats);
}

}  // namespace
}  // namespace discs

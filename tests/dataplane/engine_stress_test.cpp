// TSan stress for the persistent-worker machinery: SPSC rings sized to
// wrap around constantly, a pinned 1-packet chunk so the park/doorbell
// handshake fires thousands of times, and a churn thread landing sealed
// TableTransactions through DataPlaneEngine::apply() mid-stream. The CI
// tsan job builds exactly this binary; the invariants below hold under any
// interleaving:
//  * no lost or duplicated packets — every submitted packet yields exactly
//    one verdict and exactly one in_processed increment;
//  * genuine stamped traffic is never dropped (two-phase re-keys keep the
//    original key valid as the grace key throughout);
//  * orphan-free epochs — apply() returns strictly consecutive epochs and
//    the final table epoch equals the last one returned: no transaction is
//    ever lost, re-applied, or torn across a batch.
#include "dataplane/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dataplane/transaction.hpp"

namespace discs {
namespace {

constexpr AsNumber kPeerAs = 100;
constexpr AsNumber kVictimAs = 200;

// Alternating re-keys between kKeyA and kKeyB with retain_previous keep
// packets stamped under kKeyA verifiable at every instant.
const Key128 kKeyA = derive_key128(1);
const Key128 kKeyB = derive_key128(2);

struct SealedEnv {
  RouterTables victim;
  RouterTables peer;

  SealedEnv() {
    auto fill = [](Pfx2AsTable& t) {
      t.add(*Prefix4::parse("10.0.0.0/8"), kPeerAs);
      t.add(*Prefix4::parse("20.0.0.0/8"), kVictimAs);
      t.add(*Prefix6::parse("2001:db8:aaaa::/48"), kPeerAs);
      t.add(*Prefix6::parse("2001:db8:bbbb::/48"), kVictimAs);
    };
    fill(victim.pfx2as);
    fill(peer.pfx2as);
    peer.key_s.set_key(kVictimAs, kKeyA);
    victim.key_v.set_key(kPeerAs, kKeyA);
    peer.out_dst.install(*Prefix4::parse("20.0.0.0/8"),
                         DefenseFunction::kCdpStamp, 0, kHour);
    peer.out_dst.install(*Prefix6::parse("2001:db8:bbbb::/48"),
                         DefenseFunction::kCdpStamp, 0, kHour);
    victim.in_dst.install(*Prefix4::parse("20.0.0.0/8"),
                          DefenseFunction::kCdpVerify, 0, kHour);
    victim.in_dst.install(*Prefix6::parse("2001:db8:bbbb::/48"),
                          DefenseFunction::kCdpVerify, 0, kHour);
    // From here on the ONLY mutation path into the victim's tables is
    // TableTransaction::apply through the engine's writer lock.
    victim.seal();
  }
};

Ipv4Address rand4(Xoshiro256& rng, std::uint32_t net) {
  return Ipv4Address(net | (static_cast<std::uint32_t>(rng.next()) & 0xffffff));
}

Ipv6Address rand6(Xoshiro256& rng, std::uint16_t site) {
  return Ipv6Address::from_groups(
      {0x2001, 0xdb8, site, static_cast<std::uint16_t>(rng.below(0xffff)), 0, 0,
       0, static_cast<std::uint16_t>(rng.below(0xffff))});
}

TEST(EngineStressTest, ApplyChurnWhileWorkersDrainTinyRings) {
  SealedEnv env;
  EngineConfig config;
  config.shards = 4;
  config.ring_slots = 2;  // constant wraparound + producer backpressure
  config.min_chunk = 1;   // every packet is its own work item
  config.max_chunk = 1;
  config.cache_slots = 64;
  DataPlaneEngine engine(env.victim, kVictimAs, config);
  engine.start();
  ASSERT_TRUE(engine.workers_running());

  constexpr int kBatches = 100;
  constexpr std::size_t kBatchSize = 256;
  constexpr SimTime kNow = kMinute;

  std::atomic<bool> stop{false};
  std::vector<TableEpoch> epochs;
  std::thread churn([&] {
    Xoshiro256 rng(777);
    bool key_is_a = true;
    while (!stop.load(std::memory_order_acquire)) {
      TableTransaction txn;
      switch (rng.below(3)) {
        case 0:  // two-phase re-key; the old key survives as grace key
          key_is_a = !key_is_a;
          txn.set_verify_key(kPeerAs, key_is_a ? kKeyA : kKeyB,
                             /*retain_previous=*/true);
          break;
        case 1:  // extend the verify window (idempotent re-install)
          txn.install_function(FunctionDirection::kInDst,
                               *Prefix4::parse("20.0.0.0/8"),
                               DefenseFunction::kCdpVerify, kHour);
          break;
        case 2:  // expiry sweep plus an unrelated Pfx2AS refinement
          txn.expire_functions();
          txn.map_prefix(*Prefix4::parse("10.1.0.0/16"), kPeerAs);
          break;
      }
      epochs.push_back(engine.apply(txn, kNow));
      std::this_thread::yield();
    }
  });

  // Consumer: every packet is genuinely stamped with kKeyA, so every
  // verdict must be kPass regardless of how transactions interleave.
  BorderRouter stamper(env.peer, kPeerAs, 11);
  Xoshiro256 rng(123);
  std::uint64_t processed = 0;
  for (int b = 0; b < kBatches; ++b) {
    PacketBatch batch;
    batch.reserve(kBatchSize);
    while (batch.size() < kBatchSize) {
      if (rng.chance(0.3)) {
        Ipv6Packet p = Ipv6Packet::make(rand6(rng, 0xaaaa), rand6(rng, 0xbbbb),
                                        17, std::vector<std::uint8_t>(16));
        ASSERT_EQ(stamper.process_outbound(p, kNow), Verdict::kPass);
        batch.add(std::move(p));
      } else {
        Ipv4Packet p = Ipv4Packet::make(rand4(rng, 0x0a000000u),
                                        rand4(rng, 0x14000000u), IpProto::kUdp,
                                        std::vector<std::uint8_t>(16));
        ASSERT_EQ(stamper.process_outbound(p, kNow), Verdict::kPass);
        batch.add(std::move(p));
      }
    }
    const std::vector<Verdict> verdicts = engine.process_inbound(batch, kNow);
    ASSERT_EQ(verdicts.size(), kBatchSize) << "batch " << b;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      ASSERT_EQ(verdicts[i], Verdict::kPass)
          << "batch " << b << " packet " << i
          << ": genuine packet dropped mid-transaction";
    }
    processed += verdicts.size();
  }
  stop.store(true, std::memory_order_release);
  churn.join();

  // No lost or duplicated packets: the merged stats account for every
  // packet exactly once, and no interleaving produced a spoof verdict.
  const RouterStats stats = engine.stats();
  EXPECT_EQ(stats.in_processed, processed);
  EXPECT_EQ(stats.in_spoof_dropped, 0u);
  EXPECT_EQ(stats.in_spoof_sampled, 0u);

  // Orphan-free epochs: strictly consecutive, none skipped or re-issued,
  // and the tables ended up exactly at the last applied epoch.
  ASSERT_FALSE(epochs.empty());
  for (std::size_t i = 1; i < epochs.size(); ++i) {
    ASSERT_EQ(epochs[i], epochs[i - 1] + 1) << "epoch " << i;
  }
  EXPECT_EQ(env.victim.applied_epoch(), epochs.back());

  // The tiny rings really exercised the protocol: work was dispatched in
  // 1-packet items and the producer hit ring-full backpressure.
  const DataPlaneEngine::WorkerStats ws = engine.worker_stats();
  EXPECT_GE(ws.chunks, processed / 2);  // shard 0 runs inline; 3/4 ringed
  EXPECT_GT(ws.parks, 0u);
  // Every park ends in exactly one counted wakeup; the difference is the
  // number of workers parked at this instant — between 0 and all three.
  EXPECT_GE(ws.parks, ws.wakeups);
  EXPECT_LE(ws.parks - ws.wakeups, 3u);
}

// stop()/start() cycling between batches while a churn thread applies
// transactions: workers must re-spawn cleanly and never strand a ring item.
TEST(EngineStressTest, StopStartCyclesStayLossless) {
  SealedEnv env;
  EngineConfig config;
  config.shards = 3;
  config.ring_slots = 2;
  config.min_chunk = 2;
  config.max_chunk = 2;
  DataPlaneEngine engine(env.victim, kVictimAs, config);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    Xoshiro256 rng(5);
    bool key_is_a = true;
    while (!stop.load(std::memory_order_acquire)) {
      key_is_a = !key_is_a;
      TableTransaction txn;
      txn.set_verify_key(kPeerAs, key_is_a ? kKeyA : kKeyB,
                         /*retain_previous=*/true);
      (void)engine.apply(txn, kMinute);
      std::this_thread::yield();
    }
  });

  BorderRouter stamper(env.peer, kPeerAs, 17);
  Xoshiro256 rng(29);
  std::uint64_t processed = 0;
  for (int b = 0; b < 40; ++b) {
    if (b % 5 == 0) engine.stop();  // next batch lazily restarts the workers
    PacketBatch batch;
    for (std::size_t i = 0; i < 64; ++i) {
      Ipv4Packet p = Ipv4Packet::make(rand4(rng, 0x0a000000u),
                                      rand4(rng, 0x14000000u), IpProto::kUdp,
                                      std::vector<std::uint8_t>(8));
      ASSERT_EQ(stamper.process_outbound(p, kMinute), Verdict::kPass);
      batch.add(std::move(p));
    }
    for (const Verdict v : engine.process_inbound(batch, kMinute)) {
      ASSERT_EQ(v, Verdict::kPass);
    }
    processed += batch.size();
  }
  stop.store(true, std::memory_order_release);
  churn.join();
  EXPECT_EQ(engine.stats().in_processed, processed);
  EXPECT_TRUE(engine.workers_running());
}

}  // namespace
}  // namespace discs

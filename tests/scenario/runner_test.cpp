// Runner contract: two runs of the same spec fold to byte-identical
// outcomes, checkpoints slice the schedule where the spec says, and both
// world shapes (full DiscsSystem vs. bare controllers) come up from text.
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <string>

#include "scenario/spec.hpp"

namespace discs::scenario {
namespace {

ScenarioSpec must_parse(const std::string& text) {
  auto result = parse_scenario(text);
  if (!result.ok()) {
    ADD_FAILURE() << result.error().message;
    return ScenarioSpec{};
  }
  return std::move(*result);
}

constexpr char kSystemAttack[] = R"(scenario runner_system
seed 21
world system
topology synthetic
synthetic.ases 16
synthetic.prefixes 64
deploy.strategy optimal
deploy.count 4
drain 60s

at 30s invoke @0 all direct 20s
at 35s attack direct packets=400
at 36s attack reflection packets=300 batch=64
)";

constexpr char kControlChaos[] = R"(scenario runner_control
seed 5
world control
topology rpki
channel.latency 10ms
drain 30s
rpki 10.0.0.0/8 1
rpki 20.0.0.0/8 2
rpki 30.0.0.0/8 3
controller.peering_delay 2s
reliability.max_retries 12
deploy 1 seed=1007
deploy 2 seed=2007
deploy 3 seed=3007

fault.drop 0.2
fault.seed 404

at 60s checkpoint peered
at 70s rekey @0
at 140s checkpoint rekeyed
at 150s invoke @0 10.1.0.0/16 direct 10s
)";

std::string outcome_of(const std::string& text) {
  ScenarioRunner runner(must_parse(text));
  return runner.run().to_string();
}

TEST(ScenarioRunnerTest, SystemOutcomeIsByteIdenticalAcrossRuns) {
  const std::string first = outcome_of(kSystemAttack);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(outcome_of(kSystemAttack), first);
}

TEST(ScenarioRunnerTest, ControlOutcomeIsByteIdenticalAcrossRuns) {
  const std::string first = outcome_of(kControlChaos);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(outcome_of(kControlChaos), first);
}

TEST(ScenarioRunnerTest, SystemAttackStepsProduceReports) {
  ScenarioRunner runner(must_parse(kSystemAttack));
  const ScenarioOutcome& outcome = runner.run();
  ASSERT_EQ(outcome.attacks.size(), 2u);
  EXPECT_EQ(outcome.attacks[0].packets_sent, 400u);
  EXPECT_EQ(outcome.attacks[1].packets_sent, 300u);
  // The invoked window covers the victim's prefixes, so the direct flood
  // must lose packets at deployed filters.
  EXPECT_LT(outcome.attacks[0].delivered, outcome.attacks[0].packets_sent);
  EXPECT_EQ(outcome.deployed, 4u);
  EXPECT_EQ(outcome.residual_windows, 0u);  // 20s window << 60s drain
}

TEST(ScenarioRunnerTest, CheckpointsSliceTheSchedule) {
  ScenarioRunner runner(must_parse(kControlChaos));
  ASSERT_TRUE(runner.run_to_checkpoint("peered"));
  // All three controllers have met each other by the first checkpoint.
  for (Controller* c : runner.controllers()) {
    EXPECT_EQ(c->peer_count(), 2u);
  }
  ASSERT_TRUE(runner.run_to_checkpoint("rekeyed"));
  EXPECT_GE(runner.loop().now(), SimTime{140} * kSecond);
  // No checkpoint named "end" exists: everything runs, returns false.
  EXPECT_FALSE(runner.run_to_checkpoint("end"));
  const ScenarioOutcome& outcome = runner.run();
  EXPECT_EQ(outcome.deployed, 3u);
  EXPECT_EQ(outcome.residual_windows, 0u);
}

TEST(ScenarioRunnerTest, RunIsIdempotentOnceFinished) {
  ScenarioRunner runner(must_parse(kSystemAttack));
  const std::string once = runner.run().to_string();
  EXPECT_EQ(runner.run().to_string(), once);
}

TEST(ScenarioRunnerTest, EvalAccessorsWorkWithoutBuild) {
  ScenarioRunner runner(must_parse(
      "topology synthetic\n"
      "synthetic.ases 16\n"
      "synthetic.prefixes 64\n"
      "deploy.strategy optimal\n"
      "deploy.count 4\n"));
  const InternetDataset& ds = runner.dataset();
  EXPECT_EQ(ds.as_numbers().size(), 16u);
  const std::vector<std::size_t> order = runner.deployment_order();
  EXPECT_EQ(order.size(), 16u);
  // Optimal strategy fronts the largest address-space owners.
  EXPECT_GE(ds.address_space(ds.as_numbers()[order[0]]),
            ds.address_space(ds.as_numbers()[order[1]]));
}

TEST(ScenarioRunnerTest, DeploymentOrderHonoursStrategySeed) {
  const char* base =
      "topology synthetic\n"
      "synthetic.ases 16\n"
      "synthetic.prefixes 64\n"
      "deploy.strategy random\n";
  ScenarioRunner a(must_parse(std::string(base) + "deploy.seed 3\n"));
  ScenarioRunner b(must_parse(std::string(base) + "deploy.seed 3\n"));
  ScenarioRunner c(must_parse(std::string(base) + "deploy.seed 4\n"));
  EXPECT_EQ(a.deployment_order(), b.deployment_order());
  EXPECT_NE(a.deployment_order(), c.deployment_order());
}

TEST(ScenarioRunnerTest, BuildRejectsUndeployableAs) {
  // AS 99 owns nothing in the rpki table; deploying it must throw.
  ScenarioRunner runner(must_parse(
      "world control\n"
      "topology rpki\n"
      "rpki 10.0.0.0/8 1\n"
      "rpki 20.0.0.0/8 2\n"
      "deploy 1\n"
      "deploy 99\n"));
  EXPECT_THROW(runner.build(), std::runtime_error);
}

}  // namespace
}  // namespace discs::scenario

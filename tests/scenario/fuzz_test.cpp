// Fuzz-loop contract: invariant evaluation matches the runner's ground
// truth, the loop is deterministic from its seed, and an injected
// falsifiable invariant is found and shrunk to a smaller, still-failing,
// still-parseable repro stamped with expect_violation.
#include "scenario/fuzz.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "scenario/spec.hpp"

namespace discs::scenario {
namespace {

ScenarioSpec must_parse(const std::string& text) {
  auto result = parse_scenario(text);
  if (!result.ok()) {
    ADD_FAILURE() << result.error().message;
    return ScenarioSpec{};
  }
  return std::move(*result);
}

// Small sibling of the CLI's default base: quick to run, all invariants
// genuinely hold, and attack steps give no_attack_delivered something to
// be false about once injected.
constexpr char kFuzzBase[] = R"(scenario fuzz_base
seed 42
world system
topology synthetic
synthetic.ases 16
synthetic.prefixes 64
deploy.strategy optimal
deploy.count 4
drain 60s

at 30s invoke @0 all direct 20s
at 35s attack direct packets=500

check round_trip
check orphan_freedom
check no_delivery_failures
check retransmit_bound
)";

TEST(ScenarioFuzzTest, BaseSpecPassesItsOwnChecks) {
  const CheckResult result = check_scenario(must_parse(kFuzzBase));
  for (const auto& v : result.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

TEST(ScenarioFuzzTest, NoAttackDeliveredFailsWhenTrafficGetsThrough) {
  // Partial deployment cannot stop every spoofed packet, so the
  // deliberately falsifiable invariant must fire with a delivery count.
  ScenarioSpec spec = must_parse(kFuzzBase);
  spec.checks = {std::string(invariants::kNoAttackDelivered)};
  const CheckResult result = check_scenario(spec);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].invariant, invariants::kNoAttackDelivered);
}

TEST(ScenarioFuzzTest, CleanSweepFindsNothing) {
  const FuzzResult result =
      fuzz_scenarios(must_parse(kFuzzBase), {.seed = 1, .iterations = 5});
  EXPECT_EQ(result.executed, 5u);
  EXPECT_FALSE(result.found);
}

TEST(ScenarioFuzzTest, FuzzLoopIsDeterministicFromSeed) {
  const ScenarioSpec base = must_parse(kFuzzBase);
  const FuzzConfig config{.seed = 7, .iterations = 4};
  const FuzzResult a = fuzz_scenarios(base, config);
  const FuzzResult b = fuzz_scenarios(base, config);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.found, b.found);
  if (a.found && b.found) {
    EXPECT_EQ(serialize_scenario(a.failing), serialize_scenario(b.failing));
    EXPECT_EQ(serialize_scenario(a.shrunk), serialize_scenario(b.shrunk));
  }
}

TEST(ScenarioFuzzTest, InjectedViolationIsFoundAndShrunk) {
  const ScenarioSpec base = must_parse(kFuzzBase);
  const FuzzResult result = fuzz_scenarios(
      base, {.seed = 1,
             .iterations = 10,
             .inject = std::string(invariants::kNoAttackDelivered)});
  ASSERT_TRUE(result.found) << "injected invariant never fired";
  EXPECT_EQ(result.violation.invariant, invariants::kNoAttackDelivered);

  // The shrunk repro is (a) stamped, (b) no larger than the failing
  // mutant, (c) still failing exactly the recorded invariant, and
  // (d) parseable from its own serialization.
  EXPECT_EQ(result.shrunk.expect_violation, invariants::kNoAttackDelivered);
  const std::string shrunk_text = serialize_scenario(result.shrunk);
  EXPECT_LE(shrunk_text.size(), serialize_scenario(result.failing).size());
  EXPECT_GT(result.shrink_steps, 0u);

  const auto reparsed = parse_scenario(shrunk_text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  const CheckResult replay = check_scenario(*reparsed);
  const bool still_fires = std::any_of(
      replay.violations.begin(), replay.violations.end(), [](const auto& v) {
        return v.invariant == invariants::kNoAttackDelivered;
      });
  EXPECT_TRUE(still_fires) << "shrunk repro no longer reproduces";
}

TEST(ScenarioFuzzTest, ShrinkReachesMinimalAttack) {
  // Shrinking a spec that fails no_attack_delivered should drive the
  // packet count down hard — the minimal repro needs just one packet.
  ScenarioSpec failing = must_parse(kFuzzBase);
  failing.checks = {std::string(invariants::kNoAttackDelivered)};
  std::size_t steps = 0;
  const ScenarioSpec shrunk = shrink_scenario(
      failing, std::string(invariants::kNoAttackDelivered), &steps);
  EXPECT_GT(steps, 0u);
  ASSERT_EQ(shrunk.schedule.size(), 1u);  // the invoke step shrinks away
  EXPECT_EQ(shrunk.schedule[0].kind, ScheduleStep::Kind::kAttack);
  EXPECT_EQ(shrunk.schedule[0].attack.packets, 1u);
}

}  // namespace
}  // namespace discs::scenario

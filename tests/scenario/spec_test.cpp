// Parser/serializer contract: the canonical form round-trips byte-for-byte,
// typos and out-of-range values are rejected with line numbers, and the
// content hash is a pure function of the canonical form.
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include "scenario/fuzz.hpp"

namespace discs::scenario {
namespace {

ScenarioSpec parse_ok(const std::string& text) {
  auto result = parse_scenario(text);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  return result.ok() ? std::move(*result) : ScenarioSpec{};
}

void expect_rejected(const std::string& text, const char* why) {
  const auto result = parse_scenario(text);
  EXPECT_FALSE(result.ok()) << "expected rejection: " << why;
}

constexpr char kMinimalSystem[] = "topology synthetic\n";

constexpr char kControlWorld[] = R"(world control
topology rpki
rpki 10.0.0.0/8 1
rpki 20.0.0.0/8 2
deploy 1 seed=1007
deploy 2
)";

TEST(ScenarioSpecTest, MinimalSpecParsesWithDefaults) {
  const ScenarioSpec spec = parse_ok(kMinimalSystem);
  EXPECT_EQ(spec.name, "unnamed");
  EXPECT_EQ(spec.seed, 1u);
  EXPECT_EQ(spec.world, WorldKind::kSystem);
  EXPECT_EQ(spec.synthetic.num_ases, 64u);
  EXPECT_EQ(spec.controller.max_peering_delay, 5 * kSecond);
  EXPECT_EQ(spec.reliability.max_retries, 8u);
  EXPECT_TRUE(spec.fault.lossless());
}

TEST(ScenarioSpecTest, SerializeParseRoundTripsByteForByte) {
  const char* docs[] = {
      kMinimalSystem,
      kControlWorld,
      "topology synthetic\n"
      "seed 0xdead\n"
      "drain 90s\n"
      "deploy.strategy random\n"
      "deploy.seed 5\n"
      "deploy.count 4\n"
      "fault.drop 0.3\n"
      "fault.jitter 20ms\n"
      "fault.partition 1 2 70s 73s\n"
      "at 30s invoke @0 all direct 20s\n"
      "at 35s attack reflection packets=100 batch=64 seed=9\n"
      "check orphan_freedom\n",
      "topology synthetic\n"
      "scale.flows 1048576\n"
      "scale.packets 4194304\n"
      "scale.chunk 8192\n"
      "scale.zipf_s 1.1\n"
      "scale.payload 32\n",
  };
  for (const char* doc : docs) {
    const ScenarioSpec spec = parse_ok(doc);
    const std::string canon = serialize_scenario(spec);
    const ScenarioSpec reparsed = parse_ok(canon);
    EXPECT_EQ(serialize_scenario(reparsed), canon) << doc;
  }
}

TEST(ScenarioSpecTest, RoundTripHoldsForFuzzMutants) {
  const ScenarioSpec base = parse_ok(
      "topology synthetic\n"
      "synthetic.ases 8\n"
      "synthetic.prefixes 16\n"
      "deploy.count 2\n"
      "at 10s invoke @0 all direct 10s\n"
      "at 12s attack direct packets=200\n");
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Xoshiro256 rng(seed);
    const ScenarioSpec mutant = mutate_scenario(base, rng);
    const std::string canon = serialize_scenario(mutant);
    const auto reparsed = parse_scenario(canon);
    ASSERT_TRUE(reparsed.ok())
        << "mutant (seed " << seed
        << ") does not re-parse: " << reparsed.error().message << "\n"
        << canon;
    EXPECT_EQ(serialize_scenario(*reparsed), canon) << "seed " << seed;
  }
}

TEST(ScenarioSpecTest, MutationIsDeterministic) {
  const ScenarioSpec base = parse_ok("topology synthetic\ndeploy.count 2\n");
  Xoshiro256 a(77);
  Xoshiro256 b(77);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(serialize_scenario(mutate_scenario(base, a)),
              serialize_scenario(mutate_scenario(base, b)));
  }
}

TEST(ScenarioSpecTest, TimeFormattingPicksLargestUnit) {
  EXPECT_EQ(format_time(0), "0s");
  EXPECT_EQ(format_time(20 * kMillisecond), "20ms");
  EXPECT_EQ(format_time(90 * kSecond), "90s");
  EXPECT_EQ(format_time(2 * kMinute), "2m");
  EXPECT_EQ(format_time(24 * kHour), "24h");
  EXPECT_EQ(format_time(1500), "1500us");
}

TEST(ScenarioSpecTest, HashIsStableAcrossCosmeticReformatting) {
  const ScenarioSpec a = parse_ok("topology synthetic\nseed 9\n");
  const ScenarioSpec b =
      parse_ok("# a comment\n  seed   9\n\ntopology synthetic\n");
  EXPECT_EQ(scenario_hash(a), scenario_hash(b));
  const ScenarioSpec c = parse_ok("topology synthetic\nseed 10\n");
  EXPECT_NE(scenario_hash(a), scenario_hash(c));
}

TEST(ScenarioSpecTest, UnknownKeysAndValuesAreRejected) {
  expect_rejected("topology synthetic\nbogus_key 1\n", "unknown key");
  expect_rejected("topology martian\n", "unknown topology");
  expect_rejected("topology synthetic\nworld cloud\n", "unknown world");
  expect_rejected("topology synthetic\ndeploy.strategy best\n",
                  "unknown strategy");
  expect_rejected("topology synthetic\ncheck no_bugs_ever\n",
                  "unknown invariant");
  expect_rejected("topology synthetic\nat 5s teleport 1\n", "unknown action");
  expect_rejected("topology synthetic\nseed twelve\n", "non-numeric seed");
  expect_rejected("topology synthetic\ndrain 5 parsecs\n", "bad time unit");
}

TEST(ScenarioSpecTest, OutOfRangeValuesAreRejected) {
  expect_rejected("topology synthetic\nfault.drop 1.5\n", "probability > 1");
  expect_rejected("topology synthetic\nfault.drop -0.1\n", "probability < 0");
  expect_rejected("topology synthetic\nreliability.backoff 0.5\n",
                  "backoff < 1");
  expect_rejected("topology synthetic\nreliability.max_retries 0\n",
                  "zero retries");
  expect_rejected("topology synthetic\nsynthetic.ases 1\n", "< 2 ASes");
  expect_rejected(
      "topology synthetic\nsynthetic.ases 8\nsynthetic.prefixes 4\n",
      "fewer prefixes than ASes");
  expect_rejected("topology synthetic\nengine.min_chunk 0\n", "zero chunk");
  expect_rejected(
      "topology synthetic\nsynthetic.ases 8\nsynthetic.head_count 9\n",
      "explicit head_count larger than the AS count");
}

TEST(ScenarioSpecTest, ScaleKeysParseWithBoundsChecks) {
  const ScenarioSpec spec = parse_ok(
      "topology synthetic\n"
      "scale.flows 512\n"
      "scale.chunk 64\n"
      "scale.zipf_s 0.8\n");
  EXPECT_EQ(spec.scale.flows, 512u);
  EXPECT_EQ(spec.scale.chunk, 64u);
  EXPECT_DOUBLE_EQ(spec.scale.zipf_s, 0.8);
  EXPECT_EQ(spec.scale.packets, std::size_t{4} << 20);  // untouched default
  expect_rejected("topology synthetic\nscale.flows 0\n", "zero flows");
  expect_rejected("topology synthetic\nscale.packets 0\n", "zero packets");
  expect_rejected("topology synthetic\nscale.chunk 0\n", "zero chunk");
  expect_rejected("topology synthetic\nscale.zipf_s 0\n", "zipf_s not > 0");
  expect_rejected("topology synthetic\nscale.zipf_s -1.5\n", "negative zipf_s");
}

TEST(ScenarioSpecTest, DefaultHeadCountScalesDownWithSmallTopologies) {
  const ScenarioSpec spec = parse_ok("topology synthetic\nsynthetic.ases 8\n");
  EXPECT_EQ(spec.synthetic.head_count, 8u);
}

TEST(ScenarioSpecTest, StructuralMistakesAreRejected) {
  expect_rejected("", "missing topology");
  expect_rejected("topology rpki\n", "rpki topology without entries");
  expect_rejected("topology synthetic\nrpki 10.0.0.0/8 1\n",
                  "rpki lines under synthetic topology");
  expect_rejected("topology synthetic\nseed 1\nseed 2\n", "duplicate scalar");
  expect_rejected("topology synthetic\nat 10s settle\nat 5s settle\n",
                  "decreasing schedule");
  expect_rejected("world control\ntopology rpki\nrpki 10.0.0.0/8 1\n",
                  "control world without deploys");
  expect_rejected(std::string(kControlWorld) + "at 5s attack direct\n",
                  "attack step in a control world");
  expect_rejected(std::string(kControlWorld) + "deploy.count 2\n",
                  "strategy deployment in a control world");
}

TEST(ScenarioSpecTest, DeployOrderIndexReferencesParse) {
  const ScenarioSpec spec = parse_ok(
      "topology synthetic\n"
      "deploy.count 3\n"
      "at 10s rekey @2\n"
      "at 11s invoke @0 all reflection\n"
      "at 12s attack direct agent=@1 victim=@0\n");
  ASSERT_EQ(spec.schedule.size(), 3u);
  EXPECT_EQ(spec.schedule[0].as_index, 2);
  EXPECT_EQ(spec.schedule[1].as_index, 0);
  EXPECT_TRUE(spec.schedule[1].spoofed_source);
  EXPECT_EQ(spec.schedule[2].attack.agent_index, 1);
  EXPECT_EQ(spec.schedule[2].attack.victim_index, 0);
}

}  // namespace
}  // namespace discs::scenario

#include "lpm/lpm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "common/rng.hpp"
#include "lpm/flat.hpp"

namespace discs {
namespace {

Prefix4 pfx4(const char* text) { return *Prefix4::parse(text); }
Ipv4Address ip4(const char* text) { return *Ipv4Address::parse(text); }
Prefix6 pfx6(const char* text) { return *Prefix6::parse(text); }
Ipv6Address ip6(const char* text) { return *Ipv6Address::parse(text); }

TEST(BinaryTrieTest, EmptyLookupMisses) {
  BinaryTrie<Ipv4Key, int> t;
  EXPECT_FALSE(t.lookup(ip4("1.2.3.4")).has_value());
  EXPECT_TRUE(t.empty());
}

TEST(BinaryTrieTest, LongestMatchWins) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 8);
  t.insert(pfx4("10.1.0.0/16"), 16);
  t.insert(pfx4("10.1.2.0/24"), 24);
  EXPECT_EQ(t.lookup(ip4("10.1.2.3")), 24);
  EXPECT_EQ(t.lookup(ip4("10.1.9.1")), 16);
  EXPECT_EQ(t.lookup(ip4("10.9.9.9")), 8);
  EXPECT_FALSE(t.lookup(ip4("11.0.0.1")).has_value());
  EXPECT_EQ(t.size(), 3u);
}

TEST(BinaryTrieTest, DefaultRouteMatchesEverything) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("0.0.0.0/0"), 1);
  EXPECT_EQ(t.lookup(ip4("255.255.255.255")), 1);
  EXPECT_EQ(t.lookup(ip4("0.0.0.0")), 1);
}

TEST(BinaryTrieTest, HostRouteSupported) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 8);
  t.insert(pfx4("10.1.2.3/32"), 32);
  EXPECT_EQ(t.lookup(ip4("10.1.2.3")), 32);
  EXPECT_EQ(t.lookup(ip4("10.1.2.4")), 8);
}

TEST(BinaryTrieTest, InsertOverwritesSamePrefix) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 1);
  t.insert(pfx4("10.0.0.0/8"), 2);
  EXPECT_EQ(t.lookup(ip4("10.0.0.1")), 2);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BinaryTrieTest, FindExactDistinguishesLengths) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 8);
  ASSERT_NE(t.find_exact(pfx4("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*t.find_exact(pfx4("10.0.0.0/8")), 8);
  EXPECT_EQ(t.find_exact(pfx4("10.0.0.0/16")), nullptr);
  EXPECT_EQ(t.find_exact(pfx4("11.0.0.0/8")), nullptr);
}

TEST(BinaryTrieTest, VisitMatchesReportsAllCoveringPrefixes) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("0.0.0.0/0"), 0);
  t.insert(pfx4("10.0.0.0/8"), 8);
  t.insert(pfx4("10.1.0.0/16"), 16);
  t.insert(pfx4("99.0.0.0/8"), 99);
  std::vector<int> seen;
  t.visit_matches(ip4("10.1.2.3"), [&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 8, 16}));
}

TEST(BinaryTrieTest, ClearEmptiesTheTable) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 8);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.lookup(ip4("10.0.0.1")).has_value());
}

TEST(BinaryTrieTest, Ipv6LongestMatch) {
  BinaryTrie<Ipv6Key, int> t;
  t.insert(pfx6("2001:db8::/32"), 32);
  t.insert(pfx6("2001:db8:1::/48"), 48);
  t.insert(pfx6("2001:db8:1:2::/64"), 64);
  EXPECT_EQ(t.lookup(ip6("2001:db8:1:2::77")), 64);
  EXPECT_EQ(t.lookup(ip6("2001:db8:1:3::1")), 48);
  EXPECT_EQ(t.lookup(ip6("2001:db8:9::1")), 32);
  EXPECT_FALSE(t.lookup(ip6("2001:db9::1")).has_value());
}

TEST(StrideTrieTest, LongestMatchWins) {
  StrideTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 8);
  t.insert(pfx4("10.1.0.0/16"), 16);
  t.insert(pfx4("10.1.2.0/24"), 24);
  EXPECT_EQ(t.lookup(ip4("10.1.2.3")), 24);
  EXPECT_EQ(t.lookup(ip4("10.1.9.1")), 16);
  EXPECT_EQ(t.lookup(ip4("10.9.9.9")), 8);
  EXPECT_FALSE(t.lookup(ip4("11.0.0.1")).has_value());
}

TEST(StrideTrieTest, NonByteAlignedPrefixExpansion) {
  StrideTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/9"), 9);    // covers 10.0-10.127
  t.insert(pfx4("10.128.0.0/9"), 90);  // covers 10.128-10.255
  t.insert(pfx4("10.64.0.0/10"), 10);  // inside the first /9
  EXPECT_EQ(t.lookup(ip4("10.0.0.1")), 9);
  EXPECT_EQ(t.lookup(ip4("10.64.0.1")), 10);
  EXPECT_EQ(t.lookup(ip4("10.127.0.1")), 10);
  EXPECT_EQ(t.lookup(ip4("10.128.0.1")), 90);
  EXPECT_EQ(t.lookup(ip4("10.255.0.1")), 90);
}

TEST(StrideTrieTest, ExpansionOrderIndependent) {
  // Inserting the shorter prefix after the longer one must not clobber the
  // longer one's expanded slots.
  StrideTrie<Ipv4Key, int> a, b;
  a.insert(pfx4("10.64.0.0/10"), 10);
  a.insert(pfx4("10.0.0.0/9"), 9);
  b.insert(pfx4("10.0.0.0/9"), 9);
  b.insert(pfx4("10.64.0.0/10"), 10);
  for (const char* probe : {"10.0.0.1", "10.64.0.1", "10.127.255.255"}) {
    EXPECT_EQ(a.lookup(ip4(probe)), b.lookup(ip4(probe))) << probe;
  }
  EXPECT_EQ(a.lookup(ip4("10.64.0.1")), 10);
}

TEST(StrideTrieTest, DefaultRoute) {
  StrideTrie<Ipv4Key, int> t;
  t.insert(pfx4("0.0.0.0/0"), 1);
  t.insert(pfx4("10.0.0.0/8"), 8);
  EXPECT_EQ(t.lookup(ip4("9.9.9.9")), 1);
  EXPECT_EQ(t.lookup(ip4("10.9.9.9")), 8);
}

// Property test: both engines must agree with a naive linear-scan oracle on
// randomized rule sets and probes.
class LpmPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmPropertyTest, EnginesAgreeWithNaiveOracle) {
  Xoshiro256 rng(GetParam());
  std::vector<std::pair<Prefix4, int>> rules;
  BinaryTrie<Ipv4Key, int> binary;
  StrideTrie<Ipv4Key, int> stride;

  for (int r = 0; r < 200; ++r) {
    const unsigned len = static_cast<unsigned>(rng.below(33));
    const Ipv4Address addr(static_cast<std::uint32_t>(rng.next()));
    const Prefix4 p(addr, len);
    const int value = r;
    // Overwrite earlier duplicate rules, mirroring insert semantics.
    std::erase_if(rules, [&](const auto& rule) { return rule.first == p; });
    rules.emplace_back(p, value);
    binary.insert(p, value);
    stride.insert(p, value);
  }

  auto oracle = [&](Ipv4Address a) -> std::optional<int> {
    std::optional<int> best;
    unsigned best_len = 0;
    for (const auto& [p, v] : rules) {
      if (p.contains(a) && (!best || p.length() >= best_len)) {
        if (!best || p.length() > best_len) {
          best = v;
          best_len = p.length();
        }
      }
    }
    return best;
  };

  for (int probe = 0; probe < 2000; ++probe) {
    // Half the probes are random; half are perturbations of rule addresses
    // so prefix boundaries get exercised.
    Ipv4Address a(static_cast<std::uint32_t>(rng.next()));
    if (probe % 2 == 0 && !rules.empty()) {
      const auto& base = rules[rng.below(rules.size())].first;
      a = Ipv4Address(base.address().bits() |
                      static_cast<std::uint32_t>(rng.next() & 0xff));
    }
    const auto expected = oracle(a);
    EXPECT_EQ(binary.lookup(a), expected) << a.to_string();
    EXPECT_EQ(stride.lookup(a), expected) << a.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

// ---------------------------------------------------------------------------
// Sealed flat-engine differential suite: CompiledLpm/CompiledMatcher are
// compiled from the build tries, and the tries are the oracle. Root-bits
// overrides force the DIR-24-8 shapes (2^16/2^24 roots) onto CI-sized prefix
// sets that pick_root_bits would otherwise map to a one-byte root, so the
// spill-chain and direct-index paint paths both run under test.

constexpr unsigned kRootBits4[] = {0, 16, 24};  // 0 = pick_root_bits (8 here)
constexpr unsigned kRootBits6[] = {0, 16};

TEST(CompiledLpmTest, EmptyTrieMissesWithoutTouchingTheRoot) {
  BinaryTrie<Ipv4Key, int> t;
  CompiledLpm<Ipv4Key, int> c;
  c.build(t);
  EXPECT_FALSE(c.lookup(ip4("1.2.3.4")).has_value());
  EXPECT_EQ(c.lookup_or(ip4("1.2.3.4"), -7), -7);
}

TEST(CompiledLpmTest, NestedChainAndDefaultRouteMatchTrie) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("0.0.0.0/0"), 0);
  t.insert(pfx4("10.0.0.0/8"), 8);
  t.insert(pfx4("10.1.0.0/16"), 16);
  t.insert(pfx4("10.1.2.0/24"), 24);
  t.insert(pfx4("10.1.2.3/32"), 32);
  for (const unsigned root_bits : kRootBits4) {
    CompiledLpm<Ipv4Key, int> c;
    c.build(t, root_bits);
    EXPECT_EQ(c.root_bits(), root_bits == 0 ? 8u : root_bits);
    for (const char* probe :
         {"10.1.2.3", "10.1.2.2", "10.1.2.4", "10.1.3.0", "10.2.0.0",
          "9.255.255.255", "11.0.0.0", "0.0.0.0", "255.255.255.255"}) {
      EXPECT_EQ(c.lookup(ip4(probe)), t.lookup(ip4(probe)))
          << probe << " root_bits=" << root_bits;
    }
  }
}

TEST(CompiledLpmTest, Ipv6NestedChainMatchesTrie) {
  BinaryTrie<Ipv6Key, int> t;
  t.insert(pfx6("::/0"), 0);
  t.insert(pfx6("2001:db8::/32"), 32);
  t.insert(pfx6("2001:db8:1::/48"), 48);
  t.insert(pfx6("2001:db8:1:2::/64"), 64);
  for (const unsigned root_bits : kRootBits6) {
    CompiledLpm<Ipv6Key, int> c;
    c.build(t, root_bits);
    for (const char* probe :
         {"2001:db8:1:2::77", "2001:db8:1:3::1", "2001:db8:9::1",
          "2001:db9::1", "::", "ffff::1"}) {
      EXPECT_EQ(c.lookup(ip6(probe)), t.lookup(ip6(probe)))
          << probe << " root_bits=" << root_bits;
    }
  }
}

// Probes at a prefix's range boundaries: first/last covered address and one
// address either side (wrapping at the ends of the space — still valid
// probes, just not boundary ones).
template <typename Fn>
void boundary_probes4(const Prefix4& p, Fn&& fn) {
  const std::uint32_t lo = p.address().bits();
  const std::uint32_t hi =
      lo + static_cast<std::uint32_t>(p.size() - 1);  // /0 spans it all
  fn(Ipv4Address(lo));
  fn(Ipv4Address(hi));
  fn(Ipv4Address(lo - 1));
  fn(Ipv4Address(hi + 1));
}

std::array<std::uint8_t, 16> step6(std::array<std::uint8_t, 16> b, bool up) {
  for (int i = 15; i >= 0; --i) {
    if (up ? ++b[i] != 0 : b[i]-- != 0) break;
  }
  return b;
}

template <typename Fn>
void boundary_probes6(const Prefix6& p, Fn&& fn) {
  const std::array<std::uint8_t, 16> lo = p.address().bytes();
  std::array<std::uint8_t, 16> hi = lo;
  for (unsigned bit = p.length(); bit < 128; ++bit) {
    hi[bit / 8] |= static_cast<std::uint8_t>(0x80u >> (bit % 8));
  }
  fn(Ipv6Address(lo));
  fn(Ipv6Address(hi));
  fn(Ipv6Address(step6(lo, false)));
  fn(Ipv6Address(step6(hi, true)));
}

Prefix4 random_prefix4(Xoshiro256& rng, const std::vector<Prefix4>& rules) {
  // Bias toward refinements of existing rules so deep nested chains form.
  if (!rules.empty() && rng.chance(0.5)) {
    const Prefix4& base = rules[rng.below(rules.size())];
    const unsigned len =
        base.length() + static_cast<unsigned>(rng.below(33 - base.length()));
    const std::uint32_t noise =
        base.length() >= 32
            ? 0u
            : static_cast<std::uint32_t>(rng.next()) >> base.length();
    return Prefix4(Ipv4Address(base.address().bits() | noise), len);
  }
  return Prefix4(Ipv4Address(static_cast<std::uint32_t>(rng.next())),
                 static_cast<unsigned>(rng.below(33)));
}

Prefix6 random_prefix6(Xoshiro256& rng, const std::vector<Prefix6>& rules) {
  std::array<std::uint8_t, 16> b;
  unsigned min_len = 0;
  if (!rules.empty() && rng.chance(0.6)) {
    const Prefix6& base = rules[rng.below(rules.size())];
    b = base.address().bytes();
    min_len = base.length();
    for (unsigned i = min_len / 8; i < 16; ++i) {
      b[i] |= static_cast<std::uint8_t>(rng.next());
    }
  } else {
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
  }
  const unsigned len =
      min_len + static_cast<unsigned>(rng.below(129 - min_len));
  return Prefix6(Ipv6Address(b), len);
}

class FlatDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatDifferentialTest, CompiledLpmMatchesBinaryTrie4) {
  Xoshiro256 rng(GetParam());
  BinaryTrie<Ipv4Key, int> trie;
  std::vector<Prefix4> rules;
  for (int r = 0; r < 300; ++r) {
    const Prefix4 p = random_prefix4(rng, rules);
    rules.push_back(p);
    trie.insert(p, r);
  }
  for (const unsigned root_bits : kRootBits4) {
    CompiledLpm<Ipv4Key, int> c;
    c.build(trie, root_bits);
    auto check = [&](Ipv4Address a) {
      const auto expected = trie.lookup(a);
      ASSERT_EQ(c.lookup(a), expected)
          << a.to_string() << " root_bits=" << root_bits;
      ASSERT_EQ(c.lookup_or(a, -1), expected.value_or(-1)) << a.to_string();
    };
    for (const Prefix4& p : rules) boundary_probes4(p, check);
    for (int i = 0; i < 2000; ++i) {
      check(Ipv4Address(static_cast<std::uint32_t>(rng.next())));
    }
  }
}

TEST_P(FlatDifferentialTest, CompiledLpmMatchesBinaryTrie6) {
  Xoshiro256 rng(GetParam() ^ 0x6666);
  BinaryTrie<Ipv6Key, int> trie;
  std::vector<Prefix6> rules;
  for (int r = 0; r < 200; ++r) {
    const Prefix6 p = random_prefix6(rng, rules);
    rules.push_back(p);
    trie.insert(p, r);
  }
  for (const unsigned root_bits : kRootBits6) {
    CompiledLpm<Ipv6Key, int> c;
    c.build(trie, root_bits);
    auto check = [&](const Ipv6Address& a) {
      ASSERT_EQ(c.lookup(a), trie.lookup(a))
          << a.to_string() << " root_bits=" << root_bits;
    };
    for (const Prefix6& p : rules) boundary_probes6(p, check);
    for (int i = 0; i < 500; ++i) {
      std::array<std::uint8_t, 16> b;
      for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
      check(Ipv6Address(b));
    }
  }
}

TEST_P(FlatDifferentialTest, CompiledMatcherMatchesVisitMatches4) {
  Xoshiro256 rng(GetParam() ^ 0x4444);
  BinaryTrie<Ipv4Key, std::uint32_t> trie;
  std::vector<Prefix4> rules;
  for (std::uint32_t r = 0; r < 200; ++r) {
    const Prefix4 p = random_prefix4(rng, rules);
    rules.push_back(p);
    trie.insert(p, r);
  }
  for (const unsigned root_bits : kRootBits4) {
    CompiledMatcher<Ipv4Key> m;
    m.build(trie, root_bits);
    auto check = [&](Ipv4Address a) {
      std::vector<std::uint32_t> expected, got;
      trie.visit_matches(a, [&](std::uint32_t h) { expected.push_back(h); });
      m.visit(a, [&](std::uint32_t h) { got.push_back(h); });
      // Order matters: both must report covering prefixes shortest-first.
      ASSERT_EQ(got, expected) << a.to_string() << " root_bits=" << root_bits;
    };
    for (const Prefix4& p : rules) boundary_probes4(p, check);
    for (int i = 0; i < 1000; ++i) {
      check(Ipv4Address(static_cast<std::uint32_t>(rng.next())));
    }
  }
}

TEST_P(FlatDifferentialTest, CompiledMatcherMatchesVisitMatches6) {
  Xoshiro256 rng(GetParam() ^ 0x6464);
  BinaryTrie<Ipv6Key, std::uint32_t> trie;
  std::vector<Prefix6> rules;
  for (std::uint32_t r = 0; r < 150; ++r) {
    const Prefix6 p = random_prefix6(rng, rules);
    rules.push_back(p);
    trie.insert(p, r);
  }
  for (const unsigned root_bits : kRootBits6) {
    CompiledMatcher<Ipv6Key> m;
    m.build(trie, root_bits);
    auto check = [&](const Ipv6Address& a) {
      std::vector<std::uint32_t> expected, got;
      trie.visit_matches(a, [&](std::uint32_t h) { expected.push_back(h); });
      m.visit(a, [&](std::uint32_t h) { got.push_back(h); });
      ASSERT_EQ(got, expected) << a.to_string() << " root_bits=" << root_bits;
    };
    for (const Prefix6& p : rules) boundary_probes6(p, check);
  }
}

TEST(FlatDifferentialTest, EmptyMatcherVisitsNothing) {
  BinaryTrie<Ipv4Key, std::uint32_t> trie;
  CompiledMatcher<Ipv4Key> m;
  m.build(trie);
  int calls = 0;
  m.visit(ip4("1.2.3.4"), [&](std::uint32_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatDifferentialTest,
                         ::testing::Values(1, 2, 3, 17, 99, 424242));

TEST(LpmMemoryTest, ReportsNonZeroFootprint) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 1);
  EXPECT_GT(t.memory_bytes(), 0u);
  StrideTrie<Ipv4Key, int> s;
  s.insert(pfx4("10.0.0.0/8"), 1);
  EXPECT_GT(s.memory_bytes(), t.memory_bytes());  // stride trades memory
}

}  // namespace
}  // namespace discs

#include "lpm/lpm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace discs {
namespace {

Prefix4 pfx4(const char* text) { return *Prefix4::parse(text); }
Ipv4Address ip4(const char* text) { return *Ipv4Address::parse(text); }
Prefix6 pfx6(const char* text) { return *Prefix6::parse(text); }
Ipv6Address ip6(const char* text) { return *Ipv6Address::parse(text); }

TEST(BinaryTrieTest, EmptyLookupMisses) {
  BinaryTrie<Ipv4Key, int> t;
  EXPECT_FALSE(t.lookup(ip4("1.2.3.4")).has_value());
  EXPECT_TRUE(t.empty());
}

TEST(BinaryTrieTest, LongestMatchWins) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 8);
  t.insert(pfx4("10.1.0.0/16"), 16);
  t.insert(pfx4("10.1.2.0/24"), 24);
  EXPECT_EQ(t.lookup(ip4("10.1.2.3")), 24);
  EXPECT_EQ(t.lookup(ip4("10.1.9.1")), 16);
  EXPECT_EQ(t.lookup(ip4("10.9.9.9")), 8);
  EXPECT_FALSE(t.lookup(ip4("11.0.0.1")).has_value());
  EXPECT_EQ(t.size(), 3u);
}

TEST(BinaryTrieTest, DefaultRouteMatchesEverything) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("0.0.0.0/0"), 1);
  EXPECT_EQ(t.lookup(ip4("255.255.255.255")), 1);
  EXPECT_EQ(t.lookup(ip4("0.0.0.0")), 1);
}

TEST(BinaryTrieTest, HostRouteSupported) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 8);
  t.insert(pfx4("10.1.2.3/32"), 32);
  EXPECT_EQ(t.lookup(ip4("10.1.2.3")), 32);
  EXPECT_EQ(t.lookup(ip4("10.1.2.4")), 8);
}

TEST(BinaryTrieTest, InsertOverwritesSamePrefix) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 1);
  t.insert(pfx4("10.0.0.0/8"), 2);
  EXPECT_EQ(t.lookup(ip4("10.0.0.1")), 2);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BinaryTrieTest, FindExactDistinguishesLengths) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 8);
  ASSERT_NE(t.find_exact(pfx4("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*t.find_exact(pfx4("10.0.0.0/8")), 8);
  EXPECT_EQ(t.find_exact(pfx4("10.0.0.0/16")), nullptr);
  EXPECT_EQ(t.find_exact(pfx4("11.0.0.0/8")), nullptr);
}

TEST(BinaryTrieTest, VisitMatchesReportsAllCoveringPrefixes) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("0.0.0.0/0"), 0);
  t.insert(pfx4("10.0.0.0/8"), 8);
  t.insert(pfx4("10.1.0.0/16"), 16);
  t.insert(pfx4("99.0.0.0/8"), 99);
  std::vector<int> seen;
  t.visit_matches(ip4("10.1.2.3"), [&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 8, 16}));
}

TEST(BinaryTrieTest, ClearEmptiesTheTable) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 8);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.lookup(ip4("10.0.0.1")).has_value());
}

TEST(BinaryTrieTest, Ipv6LongestMatch) {
  BinaryTrie<Ipv6Key, int> t;
  t.insert(pfx6("2001:db8::/32"), 32);
  t.insert(pfx6("2001:db8:1::/48"), 48);
  t.insert(pfx6("2001:db8:1:2::/64"), 64);
  EXPECT_EQ(t.lookup(ip6("2001:db8:1:2::77")), 64);
  EXPECT_EQ(t.lookup(ip6("2001:db8:1:3::1")), 48);
  EXPECT_EQ(t.lookup(ip6("2001:db8:9::1")), 32);
  EXPECT_FALSE(t.lookup(ip6("2001:db9::1")).has_value());
}

TEST(StrideTrieTest, LongestMatchWins) {
  StrideTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 8);
  t.insert(pfx4("10.1.0.0/16"), 16);
  t.insert(pfx4("10.1.2.0/24"), 24);
  EXPECT_EQ(t.lookup(ip4("10.1.2.3")), 24);
  EXPECT_EQ(t.lookup(ip4("10.1.9.1")), 16);
  EXPECT_EQ(t.lookup(ip4("10.9.9.9")), 8);
  EXPECT_FALSE(t.lookup(ip4("11.0.0.1")).has_value());
}

TEST(StrideTrieTest, NonByteAlignedPrefixExpansion) {
  StrideTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/9"), 9);    // covers 10.0-10.127
  t.insert(pfx4("10.128.0.0/9"), 90);  // covers 10.128-10.255
  t.insert(pfx4("10.64.0.0/10"), 10);  // inside the first /9
  EXPECT_EQ(t.lookup(ip4("10.0.0.1")), 9);
  EXPECT_EQ(t.lookup(ip4("10.64.0.1")), 10);
  EXPECT_EQ(t.lookup(ip4("10.127.0.1")), 10);
  EXPECT_EQ(t.lookup(ip4("10.128.0.1")), 90);
  EXPECT_EQ(t.lookup(ip4("10.255.0.1")), 90);
}

TEST(StrideTrieTest, ExpansionOrderIndependent) {
  // Inserting the shorter prefix after the longer one must not clobber the
  // longer one's expanded slots.
  StrideTrie<Ipv4Key, int> a, b;
  a.insert(pfx4("10.64.0.0/10"), 10);
  a.insert(pfx4("10.0.0.0/9"), 9);
  b.insert(pfx4("10.0.0.0/9"), 9);
  b.insert(pfx4("10.64.0.0/10"), 10);
  for (const char* probe : {"10.0.0.1", "10.64.0.1", "10.127.255.255"}) {
    EXPECT_EQ(a.lookup(ip4(probe)), b.lookup(ip4(probe))) << probe;
  }
  EXPECT_EQ(a.lookup(ip4("10.64.0.1")), 10);
}

TEST(StrideTrieTest, DefaultRoute) {
  StrideTrie<Ipv4Key, int> t;
  t.insert(pfx4("0.0.0.0/0"), 1);
  t.insert(pfx4("10.0.0.0/8"), 8);
  EXPECT_EQ(t.lookup(ip4("9.9.9.9")), 1);
  EXPECT_EQ(t.lookup(ip4("10.9.9.9")), 8);
}

// Property test: both engines must agree with a naive linear-scan oracle on
// randomized rule sets and probes.
class LpmPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmPropertyTest, EnginesAgreeWithNaiveOracle) {
  Xoshiro256 rng(GetParam());
  std::vector<std::pair<Prefix4, int>> rules;
  BinaryTrie<Ipv4Key, int> binary;
  StrideTrie<Ipv4Key, int> stride;

  for (int r = 0; r < 200; ++r) {
    const unsigned len = static_cast<unsigned>(rng.below(33));
    const Ipv4Address addr(static_cast<std::uint32_t>(rng.next()));
    const Prefix4 p(addr, len);
    const int value = r;
    // Overwrite earlier duplicate rules, mirroring insert semantics.
    std::erase_if(rules, [&](const auto& rule) { return rule.first == p; });
    rules.emplace_back(p, value);
    binary.insert(p, value);
    stride.insert(p, value);
  }

  auto oracle = [&](Ipv4Address a) -> std::optional<int> {
    std::optional<int> best;
    unsigned best_len = 0;
    for (const auto& [p, v] : rules) {
      if (p.contains(a) && (!best || p.length() >= best_len)) {
        if (!best || p.length() > best_len) {
          best = v;
          best_len = p.length();
        }
      }
    }
    return best;
  };

  for (int probe = 0; probe < 2000; ++probe) {
    // Half the probes are random; half are perturbations of rule addresses
    // so prefix boundaries get exercised.
    Ipv4Address a(static_cast<std::uint32_t>(rng.next()));
    if (probe % 2 == 0 && !rules.empty()) {
      const auto& base = rules[rng.below(rules.size())].first;
      a = Ipv4Address(base.address().bits() |
                      static_cast<std::uint32_t>(rng.next() & 0xff));
    }
    const auto expected = oracle(a);
    EXPECT_EQ(binary.lookup(a), expected) << a.to_string();
    EXPECT_EQ(stride.lookup(a), expected) << a.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

TEST(LpmMemoryTest, ReportsNonZeroFootprint) {
  BinaryTrie<Ipv4Key, int> t;
  t.insert(pfx4("10.0.0.0/8"), 1);
  EXPECT_GT(t.memory_bytes(), 0u);
  StrideTrie<Ipv4Key, int> s;
  s.insert(pfx4("10.0.0.0/8"), 1);
  EXPECT_GT(s.memory_bytes(), t.memory_bytes());  // stride trades memory
}

}  // namespace
}  // namespace discs

// §IV-F alarm-mode flow reports end to end: BorderRouter emission under the
// shared sampling decision, the RingBuffer's newest-wins eviction, engine
// sink forwarding, and the victim controller's scrape API
// (enable_flow_reports / alarm_reports / flow_reports_total).
#include <gtest/gtest.h>

#include <vector>

#include "control/controller.hpp"
#include "dataplane/engine.hpp"
#include "dataplane/router.hpp"
#include "telemetry/ring.hpp"

namespace discs {
namespace {

Prefix4 pfx(const char* t) { return *Prefix4::parse(t); }
Ipv4Address ip(const char* t) { return *Ipv4Address::parse(t); }

/// AS 100 stamps toward AS 200; AS 200 verifies. Unmarked packets claiming
/// 10/8 sources are identified as spoofed at the victim border.
struct VerifyFixture {
  RouterTables tables;

  VerifyFixture() {
    tables.pfx2as.add(pfx("10.0.0.0/8"), 100);
    tables.pfx2as.add(pfx("20.0.0.0/8"), 200);
    tables.key_v.set_key(100, derive_key128(5));
    tables.in_dst.install(pfx("20.0.0.0/8"), DefenseFunction::kCdpVerify, 0,
                          kHour);
  }

  static Ipv4Packet spoofed(std::uint32_t salt) {
    return Ipv4Packet::make(Ipv4Address(0x0a000000u | salt),
                            Ipv4Address(0x14000000u | (salt ^ 0x7)),
                            IpProto::kUdp, std::vector<std::uint8_t>(8));
  }
};

TEST(FlowReportTest, DropModeEmitsReportWithDropVerdict) {
  VerifyFixture fx;
  BorderRouter router(fx.tables, 200, 1);
  std::vector<FlowReport> reports;
  router.set_flow_sink([&](const FlowReport& r) { reports.push_back(r); });

  auto packet = VerifyFixture::spoofed(1);
  EXPECT_TRUE(is_drop(router.process_inbound(packet, kMinute)));

  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].verdict, Verdict::kDropSpoofed);
  EXPECT_EQ(reports[0].source_as, 100u);
  EXPECT_TRUE(reports[0].inbound);
  EXPECT_FALSE(reports[0].ipv6);
  EXPECT_EQ(reports[0].src4, Ipv4Address(0x0a000001u));
  EXPECT_EQ(reports[0].time, kMinute);
  EXPECT_EQ(reports[0].sample_rate, 1u);
  EXPECT_NE(reports[0].functions & to_mask(DefenseFunction::kCdpVerify), 0u);
}

TEST(FlowReportTest, AlarmModeEmitsPassVerdictAndForwardsPacket) {
  VerifyFixture fx;
  BorderRouter router(fx.tables, 200, 1);
  router.set_alarm_mode(true);
  std::vector<FlowReport> reports;
  router.set_flow_sink([&](const FlowReport& r) { reports.push_back(r); });

  auto packet = VerifyFixture::spoofed(2);
  EXPECT_FALSE(is_drop(router.process_inbound(packet, kMinute)));

  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].verdict, Verdict::kPass);
  EXPECT_EQ(router.stats().in_spoof_sampled, 1u);
}

TEST(FlowReportTest, SamplingRateThinsReportsAndStampsRate) {
  VerifyFixture fx;
  BorderRouter router(fx.tables, 200, 99);
  router.set_sampling_rate(4);
  std::vector<FlowReport> reports;
  router.set_flow_sink([&](const FlowReport& r) { reports.push_back(r); });

  constexpr std::uint32_t kPackets = 400;
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    auto packet = VerifyFixture::spoofed(i);
    (void)router.process_inbound(packet, kMinute);
  }
  EXPECT_EQ(router.stats().in_spoof_dropped, kPackets);
  EXPECT_GT(reports.size(), 0u);
  EXPECT_LT(reports.size(), kPackets / 2);  // ~1 in 4 expected
  for (const auto& r : reports) EXPECT_EQ(r.sample_rate, 4u);
}

// Adding a flow sink must not consume extra randomness: alarm-sample and
// flow-report emission share one sampling draw, so two identically-seeded
// routers — one with only an alarm sink, one with both sinks — sample the
// exact same packets. The serial-vs-batch equivalence suites depend on it.
TEST(FlowReportTest, FlowSinkDoesNotPerturbSamplingStream) {
  VerifyFixture fx;
  BorderRouter alarm_only(fx.tables, 200, 1234);
  BorderRouter both(fx.tables, 200, 1234);
  std::vector<SimTime> alarm_times_a, alarm_times_b;
  alarm_only.set_alarm_sink(
      [&](const AlarmSample& s) { alarm_times_a.push_back(s.time); });
  both.set_alarm_sink(
      [&](const AlarmSample& s) { alarm_times_b.push_back(s.time); });
  std::vector<FlowReport> reports;
  both.set_flow_sink([&](const FlowReport& r) { reports.push_back(r); });
  alarm_only.set_sampling_rate(8);
  both.set_sampling_rate(8);

  for (std::uint32_t i = 0; i < 256; ++i) {
    auto p1 = VerifyFixture::spoofed(i);
    auto p2 = VerifyFixture::spoofed(i);
    (void)alarm_only.process_inbound(p1, i * kMillisecond);
    (void)both.process_inbound(p2, i * kMillisecond);
  }
  EXPECT_EQ(alarm_only.stats(), both.stats());
  EXPECT_EQ(alarm_times_a, alarm_times_b);   // same packets sampled
  EXPECT_EQ(reports.size(), alarm_times_b.size());  // both sinks co-fire
}

TEST(FlowReportTest, EngineForwardsShardReportsThroughItsSink) {
  VerifyFixture fx;
  EngineConfig config;
  config.shards = 2;
  DataPlaneEngine engine(fx.tables, 200, config);
  std::vector<FlowReport> reports;
  engine.set_flow_sink([&](const FlowReport& r) { reports.push_back(r); });

  PacketBatch batch;
  constexpr std::uint32_t kPackets = 64;
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    batch.add(BatchPacket(VerifyFixture::spoofed(i)));
  }
  (void)engine.process_inbound(batch, kMinute);
  EXPECT_EQ(reports.size(), kPackets);  // rate 1: every identified packet
  EXPECT_EQ(engine.stats().in_spoof_dropped, kPackets);
}

TEST(RingBufferTest, EvictsOldestAndCountsTotals) {
  telemetry::RingBuffer<int> ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  for (int i = 1; i <= 5; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total(), 5u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0], 3);  // oldest surviving
  EXPECT_EQ(snap[2], 5);  // newest
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 5u);  // lifetime count survives clear
}

// ---- Controller scrape (§IV-F: victim's controller collects reports) ----

class ControllerFlowReportTest : public ::testing::Test {
 protected:
  ControllerFlowReportTest()
      : rpki_({{pfx("10.0.0.0/8"), {1}}, {pfx("20.0.0.0/8"), {2}}}),
        net_(loop_, 10 * kMillisecond) {}

  std::unique_ptr<Controller> make_controller(AsNumber as) {
    ControllerConfig cfg;
    cfg.as = as;
    cfg.seed = as * 1000 + 7;
    return std::make_unique<Controller>(cfg, loop_, net_, rpki_);
  }

  InternetDataset rpki_;
  EventLoop loop_;
  ConConNetwork net_;
};

TEST_F(ControllerFlowReportTest, VictimControllerCollectsReportsIntoRing) {
  auto c1 = make_controller(1);  // victim (10/8)
  auto c2 = make_controller(2);  // collaborating peer (20/8)
  c1->discover(c2->advertisement());
  c2->discover(c1->advertisement());
  loop_.run_until(loop_.now() + 30 * kSecond);
  ASSERT_TRUE(c1->is_peer(2));

  EXPECT_FALSE(c1->flow_reports_enabled());
  c1->enable_flow_reports(/*capacity=*/4);
  EXPECT_TRUE(c1->flow_reports_enabled());

  // Invoking installs CDP-verify on the victim's own In-Dst; unstamped
  // packets claiming the peer's space are then identified at our border.
  EXPECT_EQ(c1->invoke_ddos_defense(pfx("10.1.0.0/16"),
                                    /*spoofed_source=*/false, kHour),
            1u);
  loop_.run_until(loop_.now() + kSecond);  // bounded: expiry sweep is queued

  const SimTime now = loop_.now() + kMinute;
  constexpr std::uint32_t kPackets = 6;  // > ring capacity
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    auto packet = Ipv4Packet::make(ip("20.0.0.5"),
                                   Ipv4Address(0x0a010000u | i), IpProto::kUdp,
                                   std::vector<std::uint8_t>(8));
    EXPECT_TRUE(is_drop(c1->router().process_inbound(packet, now)));
  }

  EXPECT_EQ(c1->flow_reports_total(), kPackets);
  const auto reports = c1->alarm_reports();
  ASSERT_EQ(reports.size(), 4u);  // capacity bound, oldest evicted
  for (const auto& r : reports) {
    EXPECT_EQ(r.source_as, 2u);
    EXPECT_EQ(r.verdict, Verdict::kDropSpoofed);
    EXPECT_TRUE(r.inbound);
  }
  // Newest-wins: the surviving reports are the last four packets.
  EXPECT_EQ(reports.back().dst4, Ipv4Address(0x0a010000u | (kPackets - 1)));
}

}  // namespace
}  // namespace discs

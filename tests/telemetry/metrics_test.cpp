// Instrument semantics: bucket boundary placement (exact bounds, underflow,
// overflow), merge determinism of the fixed-point histogram sum, sharded
// counter folding, registry idempotence, and collector lifecycle. The
// threaded cases double as the TSan leg for the scrape-vs-mutate paths.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

namespace discs::telemetry {
namespace {

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ShardedCounterTest, FoldsCellsAndWrapsShardIndex) {
  ShardedCounter c(4);
  EXPECT_EQ(c.shard_count(), 4u);
  c.add(0, 1);
  c.add(1, 10);
  c.add(3, 100);
  c.add(7, 1000);  // 7 % 4 == 3: out-of-range shards wrap, never crash
  EXPECT_EQ(c.value(), 1111u);
}

TEST(ShardedCounterTest, ZeroShardsClampsToOne) {
  ShardedCounter c(0);
  EXPECT_EQ(c.shard_count(), 1u);
  c.add(5, 3);
  EXPECT_EQ(c.value(), 3u);
}

TEST(GaugeTest, SetAddAndNegatives) {
  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(HistogramTest, BucketBoundariesUseLeSemantics) {
  Histogram h({1.0, 2.0, 4.0});
  h.record(1.0);   // exactly on a bound -> that bucket (v <= 1)
  h.record(1.5);   // (1, 2]
  h.record(4.0);   // (2, 4], exact upper bound included
  h.record(4.01);  // > max bound -> overflow (+Inf) bucket
  h.record(-3.0);  // negatives land in the lowest bucket
  h.record(0.0);

  const auto snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.buckets.size(), 4u);  // bounds + overflow
  EXPECT_EQ(snap.buckets[0], 3u);      // 1.0, -3.0, 0.0
  EXPECT_EQ(snap.buckets[1], 1u);      // 1.5
  EXPECT_EQ(snap.buckets[2], 1u);      // 4.0
  EXPECT_EQ(snap.buckets[3], 1u);      // 4.01
  EXPECT_EQ(snap.count, 6u);
  EXPECT_NEAR(snap.sum, 1.0 + 1.5 + 4.0 + 4.01 - 3.0, 1e-4);
}

TEST(HistogramTest, RecordNCountsOncePerUnit) {
  Histogram h({10.0});
  h.record_n(3.0, 5);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.buckets[0], 5u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_NEAR(snap.sum, 15.0, 1e-4);
}

TEST(HistogramTest, Pow2AndUnitBoundHelpers) {
  const auto p = Histogram::pow2_bounds(4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p.front(), 1.0);
  EXPECT_DOUBLE_EQ(p.back(), 8.0);
  EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));

  const auto u = Histogram::unit_bounds(10);
  ASSERT_EQ(u.size(), 10u);
  EXPECT_DOUBLE_EQ(u.back(), 1.0);
  EXPECT_TRUE(std::is_sorted(u.begin(), u.end()));
}

// The merge-determinism contract the equivalence suites lean on: the same
// multiset of recorded values yields bit-identical snapshots (buckets AND
// sum) regardless of recording order or thread interleaving, because the
// sum is integer fixed-point, not floating-point accumulation.
TEST(HistogramTest, SnapshotIsOrderIndependent) {
  std::vector<double> values;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 40.0);
  for (int i = 0; i < 4096; ++i) values.push_back(dist(rng));

  Histogram forward({1, 2, 4, 8, 16, 32});
  for (double v : values) forward.record(v);

  std::vector<double> shuffled = values;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  Histogram backward({1, 2, 4, 8, 16, 32});
  for (double v : shuffled) backward.record(v);

  const auto a = forward.snapshot();
  const auto b = backward.snapshot();
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);  // exact equality — fixed point, not fp rounding
}

TEST(HistogramTest, ConcurrentShardsMergeDeterministically) {
  std::vector<double> values;
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  for (int i = 0; i < 8192; ++i) values.push_back(dist(rng));

  Histogram serial(Histogram::pow2_bounds(8));
  for (double v : values) serial.record(v);

  Histogram threaded(Histogram::pow2_bounds(8));
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = t; i < values.size(); i += kThreads) {
        threaded.record(values[i]);
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto a = serial.snapshot();
  const auto b = threaded.snapshot();
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByNameAndLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("requests_total", "help", {{"as", "1"}});
  Counter& b = reg.counter("requests_total", "other help", {{"as", "1"}});
  EXPECT_EQ(&a, &b);

  Counter& c = reg.counter("requests_total", "", {{"as", "2"}});
  EXPECT_NE(&a, &c);  // distinct label set -> distinct instrument
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::logic_error);
}

TEST(MetricsRegistryTest, SnapshotCarriesValuesAndKinds) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(-2);
  reg.sharded_counter("s", 4).add(1, 7);
  reg.histogram("h", {1.0, 2.0}).record(1.5);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 4u);
  for (const auto& m : snap.metrics) {
    if (m.name == "c") {
      EXPECT_EQ(m.kind, MetricKind::kCounter);
      EXPECT_DOUBLE_EQ(m.value, 5.0);
    } else if (m.name == "g") {
      EXPECT_EQ(m.kind, MetricKind::kGauge);
      EXPECT_DOUBLE_EQ(m.value, -2.0);
    } else if (m.name == "s") {
      EXPECT_EQ(m.kind, MetricKind::kCounter);
      EXPECT_DOUBLE_EQ(m.value, 7.0);
    } else if (m.name == "h") {
      EXPECT_EQ(m.kind, MetricKind::kHistogram);
      EXPECT_EQ(m.histogram.count, 1u);
      EXPECT_EQ(m.histogram.buckets[1], 1u);
    } else {
      ADD_FAILURE() << "unexpected metric " << m.name;
    }
  }
}

TEST(MetricsRegistryTest, CollectorsAppendAndRemoveCleanly) {
  MetricsRegistry reg;
  std::uint64_t backing = 3;
  const auto id = reg.add_collector([&](std::vector<Sample>& out) {
    out.push_back({"view_total", static_cast<double>(backing), {},
                   MetricKind::kCounter});
  });

  auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].name, "view_total");
  EXPECT_DOUBLE_EQ(snap.metrics[0].value, 3.0);

  backing = 9;  // pull mode: the next scrape sees the new value
  EXPECT_DOUBLE_EQ(reg.snapshot().metrics[0].value, 9.0);

  reg.remove_collector(id);
  EXPECT_TRUE(reg.snapshot().metrics.empty());
  reg.remove_collector(id);  // double-remove is a no-op
}

// TSan leg: four writers hammering every instrument type while a fifth
// thread scrapes. No locks on the mutation paths — the contract is
// "relaxed atomics only", and this test exists to let TSan prove it.
TEST(MetricsRegistryTest, ConcurrentMutationAndScrape) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  ShardedCounter& s = reg.sharded_counter("s", 4);
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h", Histogram::pow2_bounds(10));

  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        s.add(static_cast<std::size_t>(t));
        g.set(i);
        h.record(static_cast<double>(i % 700));
      }
    });
  }
  std::thread scraper([&] {
    for (int i = 0; i < 50; ++i) (void)reg.snapshot();
  });
  for (auto& w : writers) w.join();
  scraper.join();

  EXPECT_EQ(c.value(), 4u * kPerThread);
  EXPECT_EQ(s.value(), 4u * kPerThread);
  EXPECT_EQ(h.count(), 4u * kPerThread);
}

}  // namespace
}  // namespace discs::telemetry

// Minimal recursive-descent JSON syntax checker for exporter tests: the
// repo has no JSON library dependency, and the exporters build documents by
// hand, so the tests validate well-formedness themselves (CI additionally
// runs `python -m json.tool` over the real artifacts).
#pragma once

#include <cctype>
#include <string>

namespace discs::testing_json {

class Checker {
 public:
  explicit Checker(const std::string& text) : s_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  bool valid() {
    pos_ = 0;
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (!consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return pos_ < s_.size() && s_[pos_++] == '"';
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto digit_run = [&] {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    digit_run();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digit_run();
    }
    if (digits && pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      bool exp_digits = false;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return false;
    }
    return digits && pos_ > start;
  }
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!consume('{')) return false;
    if (consume('}')) return true;
    do {
      skip_ws();
      if (!string()) return false;
      if (!consume(':')) return false;
      if (!value()) return false;
    } while (consume(','));
    return consume('}');
  }
  bool array() {
    if (!consume('[')) return false;
    if (consume(']')) return true;
    do {
      if (!value()) return false;
    } while (consume(','));
    return consume(']');
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline bool is_valid_json(const std::string& text) { return Checker(text).valid(); }

}  // namespace discs::testing_json

// Field-completeness guards for the mergeable Stats structs, plus the
// end-to-end check that DataPlaneEngine::bind_metrics exposes those structs
// through the registry.
//
// The merge operators (RouterStats::operator+=, LpmLookupCache::Stats::
// operator+=) are written by hand, so a newly added field can silently be
// dropped from shard merges and scrapes. Both structs are all-uint64_t
// aggregates, which lets the tests derive the field count from sizeof and
// walk every field through std::bit_cast: adding a field without updating
// the merge (or the expected count here) fails loudly.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>

#include "common/rng.hpp"
#include "dataplane/engine.hpp"
#include "dataplane/lpm_cache.hpp"
#include "dataplane/router.hpp"
#include "telemetry/metrics.hpp"

namespace discs {
namespace {

// ---- RouterStats ---------------------------------------------------------

constexpr std::size_t kRouterStatsFields =
    sizeof(RouterStats) / sizeof(std::uint64_t);
static_assert(sizeof(RouterStats) == kRouterStatsFields * sizeof(std::uint64_t),
              "RouterStats must stay an all-uint64_t aggregate for the "
              "field-completeness tests (and the scrape collectors) to work");

using RouterStatsArray = std::array<std::uint64_t, kRouterStatsFields>;

RouterStats distinct_router_stats() {
  RouterStatsArray raw{};
  for (std::size_t i = 0; i < raw.size(); ++i) raw[i] = 1000 + i;
  return std::bit_cast<RouterStats>(raw);
}

TEST(RouterStatsTest, PlusEqualsCoversEveryField) {
  const RouterStats a = distinct_router_stats();
  RouterStats sum = a;
  sum += a;
  const auto folded = std::bit_cast<RouterStatsArray>(sum);
  const auto original = std::bit_cast<RouterStatsArray>(a);
  for (std::size_t i = 0; i < folded.size(); ++i) {
    EXPECT_EQ(folded[i], 2 * original[i])
        << "RouterStats field #" << i
        << " is missing from operator+= (add it to the merge AND to the "
           "engine's telemetry collector)";
  }
}

TEST(RouterStatsTest, MergingIntoZeroIsIdentity) {
  const RouterStats a = distinct_router_stats();
  RouterStats zero;
  zero += a;
  EXPECT_EQ(zero, a);  // the defaulted operator== sees every field
}

// ---- LpmLookupCache::Stats ----------------------------------------------

constexpr std::size_t kCacheStatsFields =
    sizeof(LpmLookupCache::Stats) / sizeof(std::uint64_t);
static_assert(sizeof(LpmLookupCache::Stats) ==
                  kCacheStatsFields * sizeof(std::uint64_t),
              "LpmLookupCache::Stats must stay an all-uint64_t aggregate");

using CacheStatsArray = std::array<std::uint64_t, kCacheStatsFields>;

TEST(LpmCacheStatsTest, PlusEqualsCoversEveryField) {
  CacheStatsArray raw{};
  for (std::size_t i = 0; i < raw.size(); ++i) raw[i] = 7 + i;
  const auto a = std::bit_cast<LpmLookupCache::Stats>(raw);
  auto sum = a;
  sum += a;
  const auto folded = std::bit_cast<CacheStatsArray>(sum);
  for (std::size_t i = 0; i < folded.size(); ++i) {
    EXPECT_EQ(folded[i], 2 * raw[i])
        << "LpmLookupCache::Stats field #" << i << " missing from operator+=";
  }
}

// ---- Engine scrape end to end -------------------------------------------

/// Two-AS workload small enough for a unit test: AS 100 stamps toward
/// AS 200, whose engine verifies under a bound registry.
struct EngineFixture {
  RouterTables local;
  RouterTables peer;

  EngineFixture() {
    local.pfx2as.add(*Prefix4::parse("10.0.0.0/8"), 100);
    local.pfx2as.add(*Prefix4::parse("20.0.0.0/8"), 200);
    peer.pfx2as.add(*Prefix4::parse("10.0.0.0/8"), 100);
    peer.pfx2as.add(*Prefix4::parse("20.0.0.0/8"), 200);
    const Key128 key = derive_key128(1);
    peer.key_s.set_key(200, key);
    local.key_v.set_key(100, key);
    peer.out_dst.install(*Prefix4::parse("20.0.0.0/8"),
                         DefenseFunction::kCdpStamp, 0, kHour);
    local.in_dst.install(*Prefix4::parse("20.0.0.0/8"),
                         DefenseFunction::kCdpVerify, 0, kHour);
  }

  PacketBatch stamped_batch(std::size_t n, bool valid_marks) {
    BorderRouter stamper(peer, 100, 7);
    PacketBatch batch;
    Xoshiro256 rng(3);
    for (std::size_t i = 0; i < n; ++i) {
      auto p = Ipv4Packet::make(
          Ipv4Address(0x0a000000u |
                      (static_cast<std::uint32_t>(rng.next()) & 0xffffff)),
          Ipv4Address(0x14000000u |
                      (static_cast<std::uint32_t>(rng.next()) & 0xffffff)),
          IpProto::kUdp, std::vector<std::uint8_t>(16));
      if (valid_marks) (void)stamper.process_outbound(p, kMinute);
      batch.add(BatchPacket(std::move(p)));
    }
    return batch;
  }
};

double metric_value(const telemetry::MetricsSnapshot& snap,
                    const std::string& name, const telemetry::Labels& labels) {
  for (const auto& m : snap.metrics) {
    if (m.name == name && m.labels == labels) return m.value;
  }
  return -1;
}

TEST(EngineMetricsTest, BoundEngineExportsVerdictsStatsAndHistograms) {
  EngineFixture fx;
  telemetry::MetricsRegistry reg;
  EngineConfig config;
  config.shards = 2;
  DataPlaneEngine engine(fx.local, 200, config);
  engine.bind_metrics(reg, {{"as", "200"}});
  ASSERT_TRUE(engine.metrics_bound());

  constexpr std::size_t kValid = 96, kSpoofed = 32;
  PacketBatch good = fx.stamped_batch(kValid, /*valid_marks=*/true);
  PacketBatch bad = fx.stamped_batch(kSpoofed, /*valid_marks=*/false);
  (void)engine.process_inbound(good, kMinute);
  (void)engine.process_inbound(bad, kMinute);

  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(
      metric_value(snap, "discs_engine_verdicts_total",
                   {{"as", "200"}, {"verdict", "pass"}}),
      static_cast<double>(kValid));
  EXPECT_DOUBLE_EQ(
      metric_value(snap, "discs_engine_verdicts_total",
                   {{"as", "200"}, {"verdict", "drop_spoofed"}}),
      static_cast<double>(kSpoofed));
  // The pull-mode view over RouterStats agrees with the struct itself.
  EXPECT_DOUBLE_EQ(metric_value(snap, "discs_router_in_processed_total",
                                {{"as", "200"}}),
                   static_cast<double>(engine.stats().in_processed));
  EXPECT_DOUBLE_EQ(metric_value(snap, "discs_router_in_verified_total",
                                {{"as", "200"}}),
                   static_cast<double>(kValid));
  // Native histograms saw both batches.
  for (const auto& m : snap.metrics) {
    if (m.name == "discs_engine_batch_size") {
      EXPECT_EQ(m.histogram.count, 2u);
    }
  }
  // The AES backend info gauge is stamped with the active backend label.
  bool backend_seen = false;
  for (const auto& m : snap.metrics) {
    backend_seen = backend_seen || m.name == "discs_aes_backend_info";
  }
  EXPECT_TRUE(backend_seen);
}

TEST(EngineMetricsTest, UnbindRemovesCollectorButKeepsInstruments) {
  EngineFixture fx;
  telemetry::MetricsRegistry reg;
  DataPlaneEngine engine(fx.local, 200);
  engine.bind_metrics(reg);
  PacketBatch batch = fx.stamped_batch(8, true);
  (void)engine.process_inbound(batch, kMinute);
  engine.unbind_metrics();
  EXPECT_FALSE(engine.metrics_bound());

  const auto snap = reg.snapshot();
  // Collector views (discs_router_*) are gone...
  EXPECT_DOUBLE_EQ(metric_value(snap, "discs_router_in_processed_total", {}),
                   -1);
  // ...but the native instruments (and their recorded data) persist.
  EXPECT_DOUBLE_EQ(metric_value(snap, "discs_engine_verdicts_total",
                                {{"verdict", "pass"}}),
                   8.0);
}

TEST(EngineMetricsTest, RebindAfterUnbindIsSafe) {
  EngineFixture fx;
  telemetry::MetricsRegistry reg;
  DataPlaneEngine engine(fx.local, 200);
  engine.bind_metrics(reg);
  engine.bind_metrics(reg);  // re-bind replaces, no duplicate collectors
  PacketBatch batch = fx.stamped_batch(4, true);
  (void)engine.process_inbound(batch, kMinute);
  const auto snap = reg.snapshot();
  std::size_t router_views = 0;
  for (const auto& m : snap.metrics) {
    router_views += m.name == "discs_router_in_processed_total";
  }
  EXPECT_EQ(router_views, 1u);
}

}  // namespace
}  // namespace discs

// SpanTracer shard-writer tests: every record kind the tracer emits must
// load back through the merge tool's parser (writer and parser are pinned
// against each other here), ids must be process-unique and hex-encoded,
// and a tracer with no shard open must swallow records silently.
#include "telemetry/span.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/trace_merge.hpp"

namespace discs::telemetry {
namespace {

std::string temp_shard_path(const char* tag) {
  return ::testing::TempDir() + "discs_span_test_" + tag + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

TEST(SpanTracerTest, EveryRecordKindRoundTripsThroughTheShardParser) {
  const std::string path = temp_shard_path("kinds");
  SpanTracer tracer(7);
  ASSERT_TRUE(tracer.open(path, /*loop_now=*/1234));

  const std::uint64_t trace = tracer.new_id();
  const std::uint64_t root = tracer.new_id();
  const std::uint64_t child = tracer.new_id();
  tracer.span("invocation", "control", trace, root, 0, 100, 250,
              {{"peers", 4}});
  tracer.instant("filter_install", "dataplane", trace, child, root, 300,
                 {{"victim", 2}, {"ttp_us", 1500}});
  const TraceContext ctx{trace, root, 42};
  tracer.wire_send(2, 9, 6, ctx, 150, /*attempt=*/2);
  tracer.wire_recv(2, 11, 7, ctx, 350);
  tracer.flush();

  TraceShard shard;
  ASSERT_TRUE(load_trace_shard(path, shard));
  EXPECT_EQ(shard.as, 7u);
  EXPECT_TRUE(shard.has_meta);
  EXPECT_EQ(shard.skipped_lines, 0u);
  // meta + span + instant + send + recv
  ASSERT_EQ(shard.records.size(), 5u);

  const ShardRecord& meta = shard.records[0];
  EXPECT_EQ(meta.kind, ShardRecord::Kind::kMeta);
  EXPECT_EQ(meta.loop_us, 1234u);
  EXPECT_GT(meta.wall_us, 0u);

  const ShardRecord& span = shard.records[1];
  EXPECT_EQ(span.kind, ShardRecord::Kind::kSpan);
  EXPECT_EQ(span.name, "invocation");
  EXPECT_EQ(span.cat, "control");
  EXPECT_EQ(span.trace, trace);
  EXPECT_EQ(span.span, root);
  EXPECT_EQ(span.parent, 0u);
  EXPECT_EQ(span.ts, 100u);
  EXPECT_EQ(span.dur, 250u);
  ASSERT_EQ(span.args.size(), 1u);
  EXPECT_EQ(span.args[0].first, "peers");
  EXPECT_EQ(span.args[0].second, 4u);

  const ShardRecord& instant = shard.records[2];
  EXPECT_EQ(instant.kind, ShardRecord::Kind::kInstant);
  EXPECT_EQ(instant.name, "filter_install");
  EXPECT_EQ(instant.parent, root);
  ASSERT_EQ(instant.args.size(), 2u);
  EXPECT_EQ(instant.args[1].first, "ttp_us");
  EXPECT_EQ(instant.args[1].second, 1500u);

  const ShardRecord& send = shard.records[3];
  EXPECT_EQ(send.kind, ShardRecord::Kind::kSend);
  EXPECT_EQ(send.peer, 2u);
  EXPECT_EQ(send.seq, 9u);
  EXPECT_EQ(send.msg, 6u);
  EXPECT_EQ(send.attempt, 2u);
  EXPECT_EQ(send.trace, trace);
  EXPECT_EQ(send.span, root);

  const ShardRecord& recv = shard.records[4];
  EXPECT_EQ(recv.kind, ShardRecord::Kind::kRecv);
  EXPECT_EQ(recv.seq, 11u);
  EXPECT_EQ(recv.msg, 7u);
  EXPECT_EQ(recv.ts, 350u);

  EXPECT_EQ(tracer.records_written(), 5u);
  EXPECT_EQ(tracer.write_errors(), 0u);
  tracer.close();
  std::remove(path.c_str());
}

TEST(SpanTracerTest, IdsEmbedNodeAndAreNeverZero) {
  SpanTracer tracer(42);
  const std::uint64_t a = tracer.new_id();
  const std::uint64_t b = tracer.new_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a >> 32, 42u);
  EXPECT_EQ(b >> 32, 42u);
  EXPECT_EQ((a & 0xffffffffu) + 1, b & 0xffffffffu);
}

TEST(SpanTracerTest, ClosedTracerSwallowsRecords) {
  SpanTracer tracer(3);
  EXPECT_FALSE(tracer.is_open());
  tracer.span("x", "c", 1, 2, 0, 0, 0);
  tracer.wire_send(2, 1, 1, TraceContext{1, 2, 3}, 0);
  EXPECT_EQ(tracer.records_written(), 0u);
  EXPECT_EQ(tracer.write_errors(), 0u);
}

TEST(SpanTracerTest, HostileNamesAreEscapedIntoParsableLines) {
  const std::string path = temp_shard_path("escape");
  SpanTracer tracer(1);
  ASSERT_TRUE(tracer.open(path));
  tracer.span("quote\"back\\slash", "new\nline", 1, 2, 0, 10, 20);
  tracer.flush();

  TraceShard shard;
  ASSERT_TRUE(load_trace_shard(path, shard));
  EXPECT_EQ(shard.skipped_lines, 0u);
  ASSERT_EQ(shard.records.size(), 2u);
  EXPECT_EQ(shard.records[1].kind, ShardRecord::Kind::kSpan);
  tracer.close();
  std::remove(path.c_str());
}

TEST(SpanTracerTest, BindMetricsExportsShardCounters) {
  const std::string path = temp_shard_path("metrics");
  MetricsRegistry registry;
  SpanTracer tracer(5);
  tracer.bind_metrics(registry);
  ASSERT_TRUE(tracer.open(path));
  tracer.instant("tick", "c", 1, 2, 0, 0);

  double records = -1, open = -1;
  for (const auto& m : registry.snapshot().metrics) {
    if (m.name == "discs_trace_shard_records_total") records = m.value;
    if (m.name == "discs_trace_shard_open") open = m.value;
  }
  EXPECT_EQ(records, 2.0);  // meta + instant
  EXPECT_EQ(open, 1.0);

  tracer.unbind_metrics();
  tracer.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace discs::telemetry

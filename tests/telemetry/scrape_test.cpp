// ScrapeEndpoint tests over a real loopback TCP socket: a GET /metrics
// returns the registry in Prometheus text format, /healthz answers, and
// bad paths/methods get proper error statuses — all served from the
// RealtimeDriver poll loop on the test's own thread (no background
// threads anywhere).
#include "telemetry/scrape.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "simkit/event_loop.hpp"
#include "simkit/realtime.hpp"
#include "telemetry/metrics.hpp"

namespace discs::telemetry {
namespace {

class ScrapeTest : public ::testing::Test {
 protected:
  ScrapeTest() : driver_(loop_), endpoint_(driver_, registry_) {}

  /// Connects, sends `request`, and pumps the driver until the server
  /// closes the connection; returns everything received.
  std::string roundtrip(const std::string& request) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint_.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << std::strerror(errno);
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));

    // Non-blocking reads interleaved with driver polls: the endpoint does
    // all its work inside driver_.run_*.
    std::string response;
    bool closed = false;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    driver_.run_until_cond(
        [&] {
          char buf[4096];
          for (;;) {
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n > 0) {
              response.append(buf, static_cast<std::size_t>(n));
              continue;
            }
            if (n == 0) closed = true;
            break;
          }
          return closed;
        },
        5 * kSecond);
    ::close(fd);
    EXPECT_TRUE(closed) << "server never closed the connection";
    return response;
  }

  EventLoop loop_;
  RealtimeDriver driver_;
  MetricsRegistry registry_;
  ScrapeEndpoint endpoint_;
};

TEST_F(ScrapeTest, ListensOnEphemeralPortAndServesMetrics) {
  registry_.counter("discs_scrape_test_requests_total", "test counter")
      .add(3);
  auto& hist = registry_.histogram("discs_time_to_protection_seconds",
                                   {0.001, 0.01, 0.1, 1.0}, "ttp");
  hist.record(0.005);
  hist.record(0.05);

  ASSERT_TRUE(endpoint_.listen("127.0.0.1", 0));
  ASSERT_NE(endpoint_.port(), 0);

  const std::string response = roundtrip("GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(response.find("discs_scrape_test_requests_total 3"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("discs_time_to_protection_seconds_count 2"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("discs_time_to_protection_seconds_bucket"),
            std::string::npos);
  EXPECT_EQ(endpoint_.requests_served(), 1u);
}

TEST_F(ScrapeTest, HealthzAnswersAndBadRequestsGetErrorStatuses) {
  ASSERT_TRUE(endpoint_.listen("127.0.0.1", 0));

  EXPECT_NE(roundtrip("GET /healthz HTTP/1.1\r\n\r\n").find("200 OK"),
            std::string::npos);
  EXPECT_NE(roundtrip("GET /nope HTTP/1.1\r\n\r\n").find("404"),
            std::string::npos);
  EXPECT_NE(roundtrip("POST /metrics HTTP/1.1\r\n\r\n").find("405"),
            std::string::npos);
  EXPECT_EQ(endpoint_.requests_served(), 3u);
}

TEST_F(ScrapeTest, CloseStopsListening) {
  ASSERT_TRUE(endpoint_.listen("127.0.0.1", 0));
  EXPECT_TRUE(endpoint_.is_listening());
  EXPECT_GT(driver_.watched_fds(), 0u);
  endpoint_.close();
  EXPECT_FALSE(endpoint_.is_listening());
  EXPECT_EQ(driver_.watched_fds(), 0u);
}

}  // namespace
}  // namespace discs::telemetry

// Exporter output shape: Prometheus text (TYPE/HELP lines, label quoting,
// cumulative le buckets with +Inf/_sum/_count) and the JSON document
// (schema stamp, per-metric objects), both checked for syntactic validity
// with the minimal checker in json_check.hpp.
#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "json_check.hpp"
#include "telemetry/metrics.hpp"

namespace discs::telemetry {
namespace {

using discs::testing_json::is_valid_json;

TEST(PrometheusExportTest, CountersAndGaugesRenderWithLabels) {
  MetricsRegistry reg;
  reg.counter("discs_requests_total", "requests seen", {{"as", "7"}}).add(3);
  reg.gauge("discs_pending", "", {{"as", "7"}}).set(-1);

  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# HELP discs_requests_total requests seen\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE discs_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("discs_requests_total{as=\"7\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE discs_pending gauge\n"), std::string::npos);
  EXPECT_NE(text.find("discs_pending{as=\"7\"} -1\n"), std::string::npos);
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 2.0});
  h.record(0.5);
  h.record(1.5);
  h.record(9.0);  // overflow

  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 11\n"), std::string::npos);
}

TEST(PrometheusExportTest, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.counter("c", "", {{"msg", "a\"b\\c"}}).add(1);
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("c{msg=\"a\\\"b\\\\c\"} 1\n"), std::string::npos);
}

TEST(PrometheusExportTest, TypeLineEmittedOncePerName) {
  MetricsRegistry reg;
  reg.counter("dup_total", "", {{"as", "1"}}).add(1);
  reg.counter("dup_total", "", {{"as", "2"}}).add(2);
  const std::string text = to_prometheus(reg);
  std::size_t count = 0;
  for (std::size_t p = text.find("# TYPE dup_total"); p != std::string::npos;
       p = text.find("# TYPE dup_total", p + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(JsonExportTest, DocumentIsValidAndStampsSchema) {
  MetricsRegistry reg;
  reg.counter("c", "", {{"as", "1"}}).add(4);
  reg.gauge("g").set(2);
  reg.histogram("h", {1.0, 8.0}).record(3.0);

  const std::string json = to_json(reg);
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"c\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": "), std::string::npos);
}

TEST(JsonExportTest, EmptyRegistryStillValid) {
  MetricsRegistry reg;
  EXPECT_TRUE(is_valid_json(to_json(reg)));
}

TEST(JsonExportTest, CollectorSamplesAppearInBothFormats) {
  MetricsRegistry reg;
  const auto id = reg.add_collector([](std::vector<Sample>& out) {
    out.push_back({"discs_router_in_verified_total", 12.0, {{"as", "3"}},
                   MetricKind::kCounter});
  });
  EXPECT_NE(to_prometheus(reg).find(
                "discs_router_in_verified_total{as=\"3\"} 12\n"),
            std::string::npos);
  EXPECT_NE(to_json(reg).find("discs_router_in_verified_total"),
            std::string::npos);
  reg.remove_collector(id);
}

TEST(JsonExportTest, WriteMetricsJsonRoundTripsThroughDisk) {
  MetricsRegistry reg;
  reg.counter("written_total").add(1);
  const std::string path = ::testing::TempDir() + "discs_metrics_test.json";
  ASSERT_TRUE(write_metrics_json(reg, path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(is_valid_json(buffer.str()));
  EXPECT_NE(buffer.str().find("written_total"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JsonExportTest, UnwritablePathReturnsFalse) {
  MetricsRegistry reg;
  EXPECT_FALSE(write_metrics_json(reg, "/nonexistent-dir/x/metrics.json"));
}

}  // namespace
}  // namespace discs::telemetry

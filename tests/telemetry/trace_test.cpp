// SimTracer output: every phase type renders, the document is valid
// trace_event JSON (object form with displayTimeUnit + traceEvents), and
// metadata events name the process and tracks.
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "json_check.hpp"

namespace discs::telemetry {
namespace {

using discs::testing_json::is_valid_json;

TEST(SimTracerTest, AllPhasesProduceValidTraceEventJson) {
  SimTracer tracer;
  tracer.set_process_name("unit test");
  tracer.set_track_name(7, "AS 7 controller");
  tracer.complete("invocation_window", "control", 1000, 500, 7,
                  {{"functions", "CDP"}, {"peers", 3}});
  tracer.instant("delivery_failure", "control", 1200, 7, {{"token", 42.0}});
  tracer.async_begin("peering", "control", (7ull << 32) | 9, 100, 7);
  tracer.async_end("peering", "control", (7ull << 32) | 9, 900, 7,
                   {{"outcome", "peered"}});
  tracer.counter("in_flight", 1500, 4.0, 7);

  const std::string json = tracer.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // One event per phase letter.
  for (const char* phase : {"\"ph\":\"X\"", "\"ph\":\"i\"", "\"ph\":\"b\"",
                            "\"ph\":\"e\"", "\"ph\":\"C\""}) {
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  }
  // Metadata events from set_process_name / set_track_name.
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("AS 7 controller"), std::string::npos);
}

TEST(SimTracerTest, ArgsRenderNumbersAndStrings) {
  SimTracer tracer;
  tracer.instant("x", "c", 10, 0, {{"n", 3.5}, {"s", "text"}});
  const std::string json = tracer.to_json();
  EXPECT_TRUE(is_valid_json(json));
  EXPECT_NE(json.find("\"n\":3.5"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"text\""), std::string::npos);
}

TEST(SimTracerTest, SizeAndClear) {
  SimTracer tracer;
  EXPECT_EQ(tracer.size(), 0u);
  tracer.instant("a", "c", 1);
  tracer.instant("b", "c", 2);
  EXPECT_EQ(tracer.size(), 2u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(is_valid_json(tracer.to_json()));  // empty trace still valid
}

TEST(SimTracerTest, WritePersistsValidJson) {
  SimTracer tracer;
  tracer.set_process_name("writer");
  tracer.complete("span", "test", 0, 10);
  const std::string path = ::testing::TempDir() + "discs_trace_test.json";
  ASSERT_TRUE(tracer.write(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(is_valid_json(buffer.str()));
  EXPECT_NE(buffer.str().find("\"span\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(SimTracerTest, EscapesQuotesInNames) {
  SimTracer tracer;
  tracer.instant("quote\"inside", "cat\\egory", 5);
  EXPECT_TRUE(is_valid_json(tracer.to_json()));
}

TEST(SimTracerTest, EventCapDropsAndCounts) {
  SimTracer tracer;
  tracer.set_event_cap(2);
  EXPECT_EQ(tracer.event_cap(), 2u);
  tracer.instant("kept1", "c", 1);
  tracer.instant("kept2", "c", 2);
  tracer.instant("dropped1", "c", 3);
  tracer.counter("dropped2", 4, 1.0);
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::string json = tracer.to_json();
  EXPECT_TRUE(is_valid_json(json));
  EXPECT_NE(json.find("kept2"), std::string::npos);
  EXPECT_EQ(json.find("dropped1"), std::string::npos);
  // Metadata is never subject to the cap.
  tracer.set_process_name("capped run");
  EXPECT_NE(tracer.to_json().find("capped run"), std::string::npos);
}

TEST(SimTracerTest, CapZeroIsUnboundedAndClearResetsNothingButEvents) {
  SimTracer tracer;
  tracer.set_event_cap(1);
  tracer.instant("a", "c", 1);
  tracer.instant("b", "c", 2);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  // The cap survives clear(); the dropped counter is cumulative.
  tracer.instant("c", "c", 3);
  tracer.instant("d", "c", 4);
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.dropped(), 2u);
  tracer.set_event_cap(0);
  tracer.instant("e", "c", 5);
  tracer.instant("f", "c", 6);
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 2u);
}

TEST(SimTracerTest, BindMetricsExportsDropCounter) {
  MetricsRegistry registry;
  SimTracer tracer;
  tracer.set_event_cap(1);
  tracer.bind_metrics(registry, {{"world", "unit"}});
  tracer.instant("a", "c", 1);
  tracer.instant("b", "c", 2);
  double dropped = -1, buffered = -1;
  for (const auto& m : registry.snapshot().metrics) {
    if (m.name == "discs_trace_events_dropped_total") dropped = m.value;
    if (m.name == "discs_trace_buffered_events") buffered = m.value;
  }
  EXPECT_EQ(dropped, 1.0);
  EXPECT_EQ(buffered, 1.0);
  tracer.unbind_metrics();
}

}  // namespace
}  // namespace discs::telemetry

// Offline merge-tool tests: shard parsing rejects torn tails, the NTP
// minimum-filter clock alignment recovers a deliberately injected skew
// (overriding the coarse wall-clock baseline), the Chrome trace_event
// output is well-formed JSON with flow arrows, and the per-trace rollup
// reconstructs the causal tree the CLI gate checks.
#include "telemetry/trace_merge.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "json_check.hpp"

namespace discs::telemetry {
namespace {

ShardRecord meta_record(std::uint64_t as, std::uint64_t loop_us,
                        std::uint64_t wall_us) {
  ShardRecord r;
  r.kind = ShardRecord::Kind::kMeta;
  r.as = as;
  r.loop_us = loop_us;
  r.wall_us = wall_us;
  return r;
}

ShardRecord span_record(std::uint64_t as, const char* name,
                        std::uint64_t trace, std::uint64_t span,
                        std::uint64_t parent, std::uint64_t ts,
                        std::uint64_t dur) {
  ShardRecord r;
  r.kind = ShardRecord::Kind::kSpan;
  r.as = as;
  r.name = name;
  r.cat = "control";
  r.trace = trace;
  r.span = span;
  r.parent = parent;
  r.ts = ts;
  r.dur = dur;
  return r;
}

ShardRecord instant_record(std::uint64_t as, const char* name,
                           std::uint64_t trace, std::uint64_t span,
                           std::uint64_t parent, std::uint64_t ts) {
  ShardRecord r = span_record(as, name, trace, span, parent, ts, 0);
  r.kind = ShardRecord::Kind::kInstant;
  return r;
}

ShardRecord wire_record(ShardRecord::Kind kind, std::uint64_t as,
                        std::uint64_t peer, std::uint64_t seq,
                        std::uint64_t trace, std::uint64_t span,
                        std::uint64_t ts) {
  ShardRecord r;
  r.kind = kind;
  r.as = as;
  r.peer = peer;
  r.seq = seq;
  r.msg = 6;
  r.trace = trace;
  r.span = span;
  r.ts = ts;
  r.attempt = 1;
  return r;
}

TraceShard make_shard(std::uint32_t as, std::int64_t wall_minus_loop,
                      std::vector<ShardRecord> records) {
  TraceShard shard;
  shard.as = as;
  shard.has_meta = true;
  shard.wall_minus_loop_us = wall_minus_loop;
  shard.records = std::move(records);
  return shard;
}

TEST(ShardParseTest, ParsesARealSpanLine) {
  ShardRecord r;
  ASSERT_TRUE(parse_shard_record(
      R"({"type":"span","name":"invocation","cat":"control","as":1,)"
      R"("trace":"0xdeadbeef","span":"0x100000001","parent":"0x0",)"
      R"("ts":42,"dur":7,"args":{"peers":4}})",
      r));
  EXPECT_EQ(r.kind, ShardRecord::Kind::kSpan);
  EXPECT_EQ(r.name, "invocation");
  EXPECT_EQ(r.trace, 0xdeadbeefu);
  EXPECT_EQ(r.span, 0x100000001u);
  EXPECT_EQ(r.parent, 0u);
  EXPECT_EQ(r.ts, 42u);
  EXPECT_EQ(r.dur, 7u);
  ASSERT_EQ(r.args.size(), 1u);
  EXPECT_EQ(r.args[0].second, 4u);
}

TEST(ShardParseTest, RejectsTornAndUnknownLines) {
  ShardRecord r;
  // SIGKILL-torn tail: the closing brace never made it to disk.
  EXPECT_FALSE(parse_shard_record(
      R"({"type":"span","name":"invocation","cat":"control","as":1,"ts":4)",
      r));
  EXPECT_FALSE(parse_shard_record(R"({"type":"wormhole","as":1})", r));
  EXPECT_FALSE(parse_shard_record("", r));
  EXPECT_FALSE(parse_shard_record("not json at all", r));
}

TEST(ShardParseTest, LoadSkipsTornTailButKeepsGoodRecords) {
  const std::string path = ::testing::TempDir() + "discs_torn_" +
                           std::to_string(::getpid()) + ".jsonl";
  {
    std::ofstream f(path);
    f << R"({"type":"meta","as":3,"pid":1,"loop_us":0,"wall_us":50,"version":1})"
      << "\n";
    f << R"({"type":"instant","name":"x","cat":"c","as":3,"trace":"0x1",)"
      << R"("span":"0x2","parent":"0x0","ts":9})" << "\n";
    f << R"({"type":"span","name":"torn","cat":"c","as":3,"trace":"0x1")";
    // no newline, no closing brace: the writer died mid-record
  }
  TraceShard shard;
  ASSERT_TRUE(load_trace_shard(path, shard));
  EXPECT_EQ(shard.as, 3u);
  EXPECT_TRUE(shard.has_meta);
  EXPECT_EQ(shard.records.size(), 2u);
  EXPECT_EQ(shard.skipped_lines, 1u);
  std::remove(path.c_str());

  TraceShard missing;
  EXPECT_FALSE(load_trace_shard(path + ".does-not-exist", missing));
}

TEST(AlignClocksTest, PairedSendRecvRecoversInjectedSkew) {
  // Ground truth: node 2's loop clock runs 5000 us behind node 1's
  // (offset_2 = +5000 maps it onto node 1's timeline). Symmetric one-way
  // delay of 200 us in both directions. The wall anchors deliberately
  // claim zero skew — the pair refinement must override them.
  const std::uint64_t trace = 0xaa, s1 = 0x101, s2 = 0x201;
  TraceShard a = make_shard(
      1, 1'000'000,
      {
          wire_record(ShardRecord::Kind::kSend, 1, 2, 7, trace, s1, 100000),
          wire_record(ShardRecord::Kind::kRecv, 1, 2, 9, trace, s2, 110200),
      });
  TraceShard b = make_shard(
      2, 1'000'000,
      {
          wire_record(ShardRecord::Kind::kRecv, 2, 1, 7, trace, s1, 95200),
          wire_record(ShardRecord::Kind::kSend, 2, 1, 9, trace, s2, 105000),
      });
  // Node 3 never exchanged a traced message: it keeps the wall baseline,
  // whose anchor says its loop clock runs 250 us behind the reference.
  TraceShard c = make_shard(
      3, 1'000'000 + 250,
      {instant_record(3, "lonely", 0xbb, 0x301, 0, 1)});

  const auto offsets = align_clocks({a, b, c});
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets.at(1), 0);  // reference = lowest AS
  EXPECT_EQ(offsets.at(2), 5000);
  EXPECT_EQ(offsets.at(3), 250);
}

TEST(MergeTest, ProducesValidChromeTraceWithFlows) {
  const std::uint64_t trace = 0x77, root = 0x100000001, exec = 0x200000001;
  TraceShard a = make_shard(
      1, 500,
      {
          span_record(1, "invocation", trace, root, 0, 1000, 4000),
          wire_record(ShardRecord::Kind::kSend, 1, 2, 5, trace, root, 1100),
      });
  TraceShard b = make_shard(
      2, 500,
      {
          wire_record(ShardRecord::Kind::kRecv, 2, 1, 5, trace, root, 1300),
          span_record(2, "execute_invocation", trace, exec, root, 1300, 700),
          instant_record(2, "filter_install", trace, 0x200000002, exec, 1900),
      });
  const auto offsets = align_clocks({a, b});
  const std::string json = merge_to_chrome_trace({a, b}, offsets);

  testing_json::Checker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // The matched send/recv pair becomes a flow arrow (start + finish).
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("invocation"), std::string::npos);
  EXPECT_NE(json.find("filter_install"), std::string::npos);
}

TEST(SummarizeTest, RollsUpTheCausalTreePerTrace) {
  const std::uint64_t inv = 0x11, rekey = 0x22;
  TraceShard a = make_shard(
      1, 0,
      {
          span_record(1, "invocation", inv, 0x101, 0, 10, 100),
          span_record(1, "rekey", rekey, 0x102, 0, 5, 50),
          wire_record(ShardRecord::Kind::kSend, 1, 2, 1, inv, 0x101, 12),
      });
  TraceShard b = make_shard(
      2, 0,
      {
          wire_record(ShardRecord::Kind::kRecv, 2, 1, 1, inv, 0x101, 40),
          span_record(2, "execute_invocation", inv, 0x201, 0x101, 40, 30),
          instant_record(2, "filter_install", inv, 0x202, 0x201, 60),
      });
  TraceShard c = make_shard(
      3, 0, {span_record(3, "execute_invocation", inv, 0x301, 0x101, 45, 20)});

  const auto summaries = summarize_traces({a, b, c});
  ASSERT_EQ(summaries.size(), 2u);
  const TraceSummary* inv_sum = nullptr;
  const TraceSummary* rekey_sum = nullptr;
  for (const auto& s : summaries) {
    if (s.trace_id == inv) inv_sum = &s;
    if (s.trace_id == rekey) rekey_sum = &s;
  }
  ASSERT_NE(inv_sum, nullptr);
  ASSERT_NE(rekey_sum, nullptr);
  EXPECT_EQ(inv_sum->root_name, "invocation");
  EXPECT_EQ(inv_sum->nodes, (std::set<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(inv_sum->filter_installs, 1u);
  EXPECT_GE(inv_sum->spans, 4u);
  EXPECT_EQ(rekey_sum->nodes, (std::set<std::uint32_t>{1}));
}

}  // namespace
}  // namespace discs::telemetry

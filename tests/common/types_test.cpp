#include "common/types.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace discs {
namespace {

TEST(Ipv4AddressTest, ParseAndFormatRoundTrip) {
  const auto a = Ipv4Address::parse("192.168.1.200");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->bits(), 0xc0a801c8u);
  EXPECT_EQ(a->to_string(), "192.168.1.200");
}

TEST(Ipv4AddressTest, ParseBoundaries) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->bits(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->bits(), 0xffffffffu);
}

TEST(Ipv4AddressTest, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Address::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
}

TEST(Ipv4AddressTest, BitIndexingIsMsbFirst) {
  const auto a = Ipv4Address(0x80000001u);
  EXPECT_EQ(a.bit(0), 1u);
  EXPECT_EQ(a.bit(1), 0u);
  EXPECT_EQ(a.bit(31), 1u);
}

TEST(Prefix4Test, CanonicalizesHostBits) {
  const Prefix4 p(*Ipv4Address::parse("10.1.2.3"), 8);
  EXPECT_EQ(p.to_string(), "10.0.0.0/8");
  EXPECT_EQ(p.size(), 1u << 24);
}

TEST(Prefix4Test, ContainsAndCovers) {
  const auto p = *Prefix4::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(*Ipv4Address::parse("10.255.0.1")));
  EXPECT_FALSE(p.contains(*Ipv4Address::parse("11.0.0.1")));
  EXPECT_TRUE(p.covers(*Prefix4::parse("10.2.0.0/16")));
  EXPECT_FALSE(p.covers(*Prefix4::parse("0.0.0.0/0")));
}

TEST(Prefix4Test, ZeroLengthMatchesEverything) {
  const auto def = *Prefix4::parse("0.0.0.0/0");
  EXPECT_TRUE(def.contains(*Ipv4Address::parse("255.255.255.255")));
  EXPECT_EQ(def.size(), std::uint64_t{1} << 32);
}

TEST(Prefix4Test, RejectsMalformed) {
  EXPECT_FALSE(Prefix4::parse("10.0.0.0"));
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/33"));
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/"));
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/8x"));
}

TEST(Ipv6AddressTest, ParseFullForm) {
  const auto a = Ipv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "2001:db8::1");
}

TEST(Ipv6AddressTest, ParseCompressedForms) {
  EXPECT_EQ(Ipv6Address::parse("::")->to_string(), "::");
  EXPECT_EQ(Ipv6Address::parse("::1")->to_string(), "::1");
  EXPECT_EQ(Ipv6Address::parse("fe80::")->to_string(), "fe80::");
  EXPECT_EQ(Ipv6Address::parse("2001:db8::8:800:200c:417a")->to_string(),
            "2001:db8::8:800:200c:417a");
}

TEST(Ipv6AddressTest, RejectsMalformed) {
  EXPECT_FALSE(Ipv6Address::parse(""));
  EXPECT_FALSE(Ipv6Address::parse(":::"));
  EXPECT_FALSE(Ipv6Address::parse("1::2::3"));
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7"));
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9"));
  EXPECT_FALSE(Ipv6Address::parse("12345::"));
  EXPECT_FALSE(Ipv6Address::parse("zzzz::"));
}

TEST(Ipv6AddressTest, BitIndexingIsMsbFirst) {
  const auto a = *Ipv6Address::parse("8000::1");
  EXPECT_EQ(a.bit(0), 1u);
  EXPECT_EQ(a.bit(1), 0u);
  EXPECT_EQ(a.bit(127), 1u);
}

TEST(Prefix6Test, CanonicalizesHostBits) {
  const Prefix6 p(*Ipv6Address::parse("2001:db8::ffff"), 32);
  EXPECT_EQ(p.to_string(), "2001:db8::/32");
}

TEST(Prefix6Test, ContainsRespectsPartialByte) {
  const Prefix6 p(*Ipv6Address::parse("2001:d80::"), 28);
  EXPECT_TRUE(p.contains(*Ipv6Address::parse("2001:d8f::1")));
  EXPECT_FALSE(p.contains(*Ipv6Address::parse("2001:d90::1")));
}

TEST(TypesTest, HashableInUnorderedContainers) {
  std::unordered_set<Ipv4Address> v4{Ipv4Address(1), Ipv4Address(2)};
  std::unordered_set<Prefix4> p4{*Prefix4::parse("10.0.0.0/8")};
  std::unordered_set<Ipv6Address> v6{*Ipv6Address::parse("::1")};
  std::unordered_set<Prefix6> p6{*Prefix6::parse("2001:db8::/32")};
  EXPECT_EQ(v4.size(), 2u);
  EXPECT_TRUE(p4.contains(*Prefix4::parse("10.0.0.0/8")));
  EXPECT_TRUE(v6.contains(*Ipv6Address::parse("::1")));
  EXPECT_TRUE(p6.contains(*Prefix6::parse("2001:db8::/32")));
}

}  // namespace
}  // namespace discs

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace discs {
namespace {

TEST(ThreadPoolTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, HandlesEmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NonZeroBeginOffset) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, 200, [&](std::size_t i) { sum.fetch_add(i); });
  std::size_t expect = 0;
  for (std::size_t i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(0, 1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, GlobalPoolWorks) {
  std::atomic<int> count{0};
  parallel_for(0, 256, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 256);
}

}  // namespace
}  // namespace discs

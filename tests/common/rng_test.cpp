#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace discs {
namespace {

TEST(SplitMix64Test, MatchesReferenceSequence) {
  // Reference outputs for seed 1234567 from Vigna's splitmix64.c.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ull);
  EXPECT_EQ(sm.next(), 3203168211198807973ull);
  EXPECT_EQ(sm.next(), 9817491932198370423ull);
}

TEST(Xoshiro256Test, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(42), b(43);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256Test, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256Test, BelowIsRoughlyUniform) {
  Xoshiro256 rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 400);  // ~4 sigma
  }
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(DeriveSeedTest, ChildStreamsAreIndependent) {
  const std::uint64_t s0 = derive_seed(1, 0);
  const std::uint64_t s1 = derive_seed(1, 1);
  const std::uint64_t other_root = derive_seed(2, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, other_root);
  // Deterministic.
  EXPECT_EQ(s0, derive_seed(1, 0));
}

}  // namespace
}  // namespace discs

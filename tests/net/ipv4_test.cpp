#include "net/ipv4.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"

namespace discs {
namespace {

Ipv4Packet sample_packet() {
  return Ipv4Packet::make(*Ipv4Address::parse("10.1.2.3"),
                          *Ipv4Address::parse("192.0.2.77"), IpProto::kUdp,
                          {0xca, 0xfe, 0xba, 0xbe, 1, 2, 3, 4, 5, 6});
}

TEST(ChecksumTest, Rfc1071KnownAnswer) {
  // Example from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x2ddf0 -> fold -> 0xddf2 -> complement -> 0x220d.
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(ChecksumTest, OddLengthPadsWithZero) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300 -> sum 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

TEST(ChecksumTest, AllZeroDataGivesAllOnes) {
  const std::uint8_t data[4] = {0, 0, 0, 0};
  EXPECT_EQ(internet_checksum(data), 0xffff);
}

TEST(ChecksumTest, IncrementalUpdateMatchesRecomputation) {
  std::uint8_t data[] = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x40, 0x00,
                         0x40, 0x11, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                         0xc0, 0x00, 0x02, 0x01};
  const std::uint16_t before = internet_checksum(data);
  // Change the identification word from 0x1234 to 0xbeef.
  const std::uint16_t updated =
      incremental_checksum_update(before, 0x1234, 0xbeef);
  data[4] = 0xbe;
  data[5] = 0xef;
  EXPECT_EQ(updated, internet_checksum(data));
}

TEST(ChecksumTest, IncrementalChainOfUpdates) {
  std::uint8_t data[20] = {};
  for (int i = 0; i < 20; ++i) data[i] = std::uint8_t(i * 7 + 1);
  std::uint16_t sum = internet_checksum(data);
  for (int w = 0; w < 10; ++w) {
    const std::uint16_t old_word =
        static_cast<std::uint16_t>((data[2 * w] << 8) | data[2 * w + 1]);
    const std::uint16_t new_word = static_cast<std::uint16_t>(old_word ^ 0x5a5a);
    sum = incremental_checksum_update(sum, old_word, new_word);
    data[2 * w] = static_cast<std::uint8_t>(new_word >> 8);
    data[2 * w + 1] = static_cast<std::uint8_t>(new_word & 0xff);
    EXPECT_EQ(sum, internet_checksum(data));
  }
}

TEST(Ipv4PacketTest, MakeProducesValidChecksumAndLength) {
  const auto p = sample_packet();
  EXPECT_TRUE(p.checksum_valid());
  EXPECT_EQ(p.header.total_length, 30);
}

TEST(Ipv4PacketTest, SerializeParseRoundTrip) {
  const auto p = sample_packet();
  const auto wire = p.serialize();
  ASSERT_EQ(wire.size(), 30u);
  const auto q = Ipv4Packet::parse(wire);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->header.src, p.header.src);
  EXPECT_EQ(q->header.dst, p.header.dst);
  EXPECT_EQ(q->header.protocol, p.header.protocol);
  EXPECT_EQ(q->payload, p.payload);
  EXPECT_TRUE(q->checksum_valid());
}

TEST(Ipv4PacketTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4Packet::parse(std::vector<std::uint8_t>{}));
  std::vector<std::uint8_t> short_input(10, 0);
  EXPECT_FALSE(Ipv4Packet::parse(short_input));
  auto wire = sample_packet().serialize();
  wire[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Packet::parse(wire));
  wire[0] = 0x46;  // IHL 6 (options) unsupported
  EXPECT_FALSE(Ipv4Packet::parse(wire));
}

TEST(Ipv4PacketTest, ParseRejectsTotalLengthBeyondBuffer) {
  auto wire = sample_packet().serialize();
  wire[2] = 0x40;  // total_length = 0x401e, way past the buffer
  EXPECT_FALSE(Ipv4Packet::parse(wire));
}

TEST(Ipv4PacketTest, FlagsAndFragmentOffsetRoundTrip) {
  auto p = sample_packet();
  p.header.flags = 0b010;  // DF
  p.header.fragment_offset = 0x1abc;
  p.header.refresh_checksum();
  const auto q = Ipv4Packet::parse(p.serialize());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->header.flags, 0b010);
  EXPECT_EQ(q->header.fragment_offset, 0x1abc);
}

TEST(DiscsMsgV4Test, ContainsExpectedFields) {
  const auto p = sample_packet();
  const auto msg = discs_msg(p);
  EXPECT_EQ(msg[0], 0x45);
  EXPECT_EQ(msg[1], 0x00);
  EXPECT_EQ(msg[2], 30);  // total length
  EXPECT_EQ(msg[3], 0x00);
  EXPECT_EQ(msg[4], 17);  // UDP
  EXPECT_EQ(msg[5], 10);  // first src octet
  EXPECT_EQ(msg[9], 192);  // first dst octet
  EXPECT_EQ(msg[13], 0xca);  // first payload byte
  EXPECT_EQ(msg[20], 0x04);  // eighth payload byte
}

TEST(DiscsMsgV4Test, ExcludesIpidAndFragmentOffset) {
  auto p = sample_packet();
  const auto before = discs_msg(p);
  p.header.identification = 0xbeef;
  p.header.fragment_offset = 0x0123;
  EXPECT_EQ(discs_msg(p), before);
}

TEST(DiscsMsgV4Test, ShortPayloadZeroPadded) {
  const auto p = Ipv4Packet::make(Ipv4Address(1), Ipv4Address(2),
                                  IpProto::kTcp, {0xaa, 0xbb});
  const auto msg = discs_msg(p);
  EXPECT_EQ(msg[13], 0xaa);
  EXPECT_EQ(msg[14], 0xbb);
  for (std::size_t i = 15; i < 21; ++i) EXPECT_EQ(msg[i], 0);
}

TEST(DiscsMsgV4Test, DistinguishesNonIdenticalPackets) {
  const auto a = Ipv4Packet::make(Ipv4Address(1), Ipv4Address(2),
                                  IpProto::kUdp, {1, 2, 3});
  const auto b = Ipv4Packet::make(Ipv4Address(1), Ipv4Address(2),
                                  IpProto::kUdp, {1, 2, 4});
  const auto c = Ipv4Packet::make(Ipv4Address(3), Ipv4Address(2),
                                  IpProto::kUdp, {1, 2, 3});
  EXPECT_NE(discs_msg(a), discs_msg(b));
  EXPECT_NE(discs_msg(a), discs_msg(c));
}

}  // namespace
}  // namespace discs

#include "net/ipv6.hpp"

#include <gtest/gtest.h>

namespace discs {
namespace {

Ipv6Address addr6(const char* text) { return *Ipv6Address::parse(text); }

Ipv6Packet sample_packet() {
  return Ipv6Packet::make(addr6("2001:db8::1"), addr6("2001:db8:ffff::2"), 17,
                          {9, 8, 7, 6, 5, 4, 3, 2, 1, 0});
}

TEST(Ipv6PacketTest, MakeSetsChainFields) {
  const auto p = sample_packet();
  EXPECT_EQ(p.header.payload_length, 10);
  EXPECT_EQ(p.header.next_header, 17);
  EXPECT_EQ(p.wire_size(), 50u);
}

TEST(Ipv6PacketTest, PlainSerializeParseRoundTrip) {
  const auto p = sample_packet();
  const auto wire = p.serialize();
  ASSERT_EQ(wire.size(), p.wire_size());
  const auto q = Ipv6Packet::parse(wire);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, p);
}

TEST(Ipv6PacketTest, HeaderFieldsSurviveRoundTrip) {
  auto p = sample_packet();
  p.header.traffic_class = 0xb7;
  p.header.flow_label = 0xabcde;
  p.header.hop_limit = 3;
  p.refresh_chain();
  const auto q = Ipv6Packet::parse(p.serialize());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->header.traffic_class, 0xb7);
  EXPECT_EQ(q->header.flow_label, 0xabcdeu);
  EXPECT_EQ(q->header.hop_limit, 3);
}

TEST(Ipv6PacketTest, DestOptsRoundTrip) {
  auto p = sample_packet();
  DestinationOptionsHeader dopt;
  dopt.options.push_back({kDiscsOptionType, {0xde, 0xad, 0xbe, 0xef}});
  p.dest_opts = dopt;
  p.refresh_chain();
  EXPECT_EQ(p.header.next_header, kNextHeaderDestOpts);
  // 2 lead bytes + 6 option bytes = 8, no padding needed.
  EXPECT_EQ(p.dest_opts->wire_size(), 8u);
  EXPECT_EQ(p.header.payload_length, 18);

  const auto q = Ipv6Packet::parse(p.serialize());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, p);
  ASSERT_TRUE(q->dest_opts.has_value());
  ASSERT_EQ(q->dest_opts->options.size(), 1u);
  EXPECT_EQ(q->dest_opts->options[0].type, kDiscsOptionType);
}

TEST(Ipv6PacketTest, DestOptsPaddingInsertedAndStripped) {
  auto p = sample_packet();
  DestinationOptionsHeader dopt;
  dopt.options.push_back({0x05, {1, 2, 3}});  // 2+5 = 7 bytes -> 1 pad byte
  p.dest_opts = dopt;
  p.refresh_chain();
  EXPECT_EQ(p.dest_opts->wire_size(), 8u);
  const auto q = Ipv6Packet::parse(p.serialize());
  ASSERT_TRUE(q.has_value());
  ASSERT_TRUE(q->dest_opts.has_value());
  // Padding options must not appear in the structured view.
  EXPECT_EQ(q->dest_opts->options.size(), 1u);
  EXPECT_EQ(*q, p);
}

TEST(Ipv6PacketTest, FullChainOrderHbhDoptRouting) {
  auto p = sample_packet();
  p.hop_by_hop.assign(6, 0xaa);  // 2 + 6 = 8 bytes on the wire
  DestinationOptionsHeader dopt;
  dopt.options.push_back({kDiscsOptionType, {1, 2, 3, 4}});
  p.dest_opts = dopt;
  p.routing.assign(14, 0xbb);  // 2 + 14 = 16 bytes on the wire
  p.refresh_chain();
  EXPECT_EQ(p.header.next_header, kNextHeaderHopByHop);
  EXPECT_EQ(p.header.payload_length, 8 + 8 + 16 + 10);

  const auto q = Ipv6Packet::parse(p.serialize());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, p);
}

TEST(Ipv6PacketTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv6Packet::parse(std::vector<std::uint8_t>{}));
  std::vector<std::uint8_t> short_input(20, 0);
  EXPECT_FALSE(Ipv6Packet::parse(short_input));
  auto wire = sample_packet().serialize();
  wire[0] = 0x45;  // version 4
  EXPECT_FALSE(Ipv6Packet::parse(wire));
}

TEST(Ipv6PacketTest, ParseRejectsTruncatedExtensionHeader) {
  auto p = sample_packet();
  DestinationOptionsHeader dopt;
  dopt.options.push_back({kDiscsOptionType, {1, 2, 3, 4}});
  p.dest_opts = dopt;
  p.refresh_chain();
  auto wire = p.serialize();
  wire.resize(Ipv6Header::kSize + 4);  // cut inside the extension header
  // Shrink payload_length accordingly so the length check passes but the
  // extension walk hits the truncation.
  wire[4] = 0;
  wire[5] = 4;
  EXPECT_FALSE(Ipv6Packet::parse(wire));
}

TEST(Ipv6PacketTest, ParseRejectsOutOfOrderChain) {
  // Hand-craft routing followed by hop-by-hop, which RFC order forbids and
  // the parser rejects.
  auto p = sample_packet();
  p.routing.assign(6, 0);
  p.refresh_chain();
  auto wire = p.serialize();
  // Rewrite: fixed header says routing, routing's next header says HBH, and
  // append a fake HBH header.
  wire[6] = kNextHeaderRouting;
  wire[Ipv6Header::kSize] = kNextHeaderHopByHop;
  std::vector<std::uint8_t> hbh = {17, 0, 0, 0, 0, 0, 0, 0};
  hbh[1] = 0;  // 8 bytes total
  wire.insert(wire.end() - 10, hbh.begin(), hbh.end());
  wire[4] = 0;
  wire[5] = static_cast<std::uint8_t>(8 + 8 + 10);
  EXPECT_FALSE(Ipv6Packet::parse(wire));
}

TEST(DiscsMsgV6Test, LayoutAndExclusions) {
  auto p = sample_packet();
  const auto msg = discs_msg(p);
  EXPECT_EQ(msg[0], 0x20);   // 2001:db8::1 first byte
  EXPECT_EQ(msg[15], 0x01);  // last src byte
  EXPECT_EQ(msg[16], 0x20);  // first dst byte
  EXPECT_EQ(msg[32], 9);     // first payload byte
  EXPECT_EQ(msg[39], 2);     // eighth payload byte

  // Payload Length and Next Header are excluded: adding an extension header
  // must not change the msg.
  auto stamped = p;
  DestinationOptionsHeader dopt;
  dopt.options.push_back({kDiscsOptionType, {1, 2, 3, 4}});
  stamped.dest_opts = dopt;
  stamped.refresh_chain();
  EXPECT_EQ(discs_msg(stamped), msg);
}

TEST(DiscsMsgV6Test, ShortPayloadZeroPadded) {
  const auto p = Ipv6Packet::make(addr6("::1"), addr6("::2"), 6, {0x42});
  const auto msg = discs_msg(p);
  EXPECT_EQ(msg[32], 0x42);
  for (std::size_t i = 33; i < 40; ++i) EXPECT_EQ(msg[i], 0);
}

TEST(DiscsOptionTypeTest, HighBitsAre001) {
  // Paper §V-F: the first three bits of the option type must be "001" so
  // legacy routers skip the option but may not drop the packet.
  EXPECT_EQ(kDiscsOptionType >> 5, 0b001);
}

}  // namespace
}  // namespace discs

#include "net/icmp.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"

namespace discs {
namespace {

Ipv6Address addr6(const char* text) { return *Ipv6Address::parse(text); }

TEST(IcmpV4Test, TimeExceededQuotesOffendingHeader) {
  auto offending = Ipv4Packet::make(*Ipv4Address::parse("10.0.0.1"),
                                    *Ipv4Address::parse("192.0.2.1"),
                                    IpProto::kUdp, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  offending.header.identification = 0x1234;
  offending.header.refresh_checksum();

  const auto te = build_time_exceeded_v4(offending, *Ipv4Address::parse("203.0.113.9"));
  EXPECT_EQ(te.header.protocol, static_cast<std::uint8_t>(IpProto::kIcmp));
  EXPECT_EQ(te.header.dst, offending.header.src);
  ASSERT_EQ(te.payload.size(), 8u + 20u + 8u);
  EXPECT_EQ(te.payload[0], kIcmpTimeExceeded);
  // ICMP checksum over the body must validate to zero.
  EXPECT_EQ(icmpv4_checksum(te.payload), 0);
  // Quoted header carries the stamped identification field.
  EXPECT_EQ(te.payload[8 + 4], 0x12);
  EXPECT_EQ(te.payload[8 + 5], 0x34);
  // Quoted payload is the first 8 bytes only.
  EXPECT_EQ(te.payload[8 + 20], 1);
  EXPECT_EQ(te.payload[8 + 27], 8);
}

TEST(IcmpV4Test, ScrubErasesQuotedMark) {
  auto offending = Ipv4Packet::make(*Ipv4Address::parse("10.0.0.1"),
                                    *Ipv4Address::parse("192.0.2.1"),
                                    IpProto::kUdp, {1, 2, 3, 4});
  // Pretend DISCS stamped a 29-bit mark across IPID + FragmentOffset.
  offending.header.identification = 0xbeef;
  offending.header.fragment_offset = 0x0777;
  offending.header.refresh_checksum();

  auto te = build_time_exceeded_v4(offending, *Ipv4Address::parse("203.0.113.9"));
  ASSERT_TRUE(scrub_quoted_mark_v4(te));

  // Mark bytes zeroed.
  EXPECT_EQ(te.payload[8 + 4], 0);
  EXPECT_EQ(te.payload[8 + 5], 0);
  EXPECT_EQ(te.payload[8 + 6] & 0x1f, 0);
  EXPECT_EQ(te.payload[8 + 7], 0);
  // Both the quoted header checksum and the ICMP checksum remain valid.
  const std::span<const std::uint8_t> quoted(te.payload.data() + 8, 20);
  EXPECT_EQ(internet_checksum(quoted), 0);
  EXPECT_EQ(icmpv4_checksum(te.payload), 0);
}

TEST(IcmpV4Test, ScrubPreservesFlagBits) {
  auto offending = Ipv4Packet::make(Ipv4Address(1), Ipv4Address(2),
                                    IpProto::kUdp, {});
  offending.header.flags = 0b010;  // DF
  offending.header.identification = 0x5555;
  offending.header.refresh_checksum();
  auto te = build_time_exceeded_v4(offending, Ipv4Address(3));
  ASSERT_TRUE(scrub_quoted_mark_v4(te));
  EXPECT_EQ(te.payload[8 + 6] >> 5, 0b010);
}

TEST(IcmpV4Test, ScrubIgnoresNonTimeExceeded) {
  auto p = Ipv4Packet::make(Ipv4Address(1), Ipv4Address(2), IpProto::kUdp,
                            {1, 2, 3});
  EXPECT_FALSE(scrub_quoted_mark_v4(p));
  auto echo = Ipv4Packet::make(Ipv4Address(1), Ipv4Address(2), IpProto::kIcmp,
                               std::vector<std::uint8_t>(40, 0));
  echo.payload[0] = 8;  // echo request
  EXPECT_FALSE(scrub_quoted_mark_v4(echo));
}

TEST(IcmpV4Test, ScrubNoOpWhenNoMarkPresent) {
  auto offending = Ipv4Packet::make(Ipv4Address(1), Ipv4Address(2),
                                    IpProto::kUdp, {});
  auto te = build_time_exceeded_v4(offending, Ipv4Address(3));
  EXPECT_FALSE(scrub_quoted_mark_v4(te));
}

TEST(IcmpV6Test, TimeExceededRoundTripAndChecksum) {
  auto offending = Ipv6Packet::make(addr6("2001:db8::1"), addr6("2001:db8::2"),
                                    17, {1, 2, 3, 4});
  const auto te = build_time_exceeded_v6(offending, addr6("2001:db8::99"));
  EXPECT_EQ(te.upper_proto, static_cast<std::uint8_t>(IpProto::kIcmpV6));
  EXPECT_EQ(te.header.dst, offending.header.src);
  EXPECT_EQ(te.payload[0], kIcmpV6TimeExceeded);
  EXPECT_EQ(icmpv6_checksum(te.header.src, te.header.dst, te.payload), 0);
}

TEST(IcmpV6Test, PacketTooBigCarriesMtu) {
  auto offending = Ipv6Packet::make(addr6("::1"), addr6("::2"), 17,
                                    std::vector<std::uint8_t>(64, 0xab));
  const auto ptb = build_packet_too_big_v6(offending, addr6("::9"), 1492);
  EXPECT_EQ(ptb.payload[0], kIcmpV6PacketTooBig);
  const std::uint32_t mtu = (std::uint32_t{ptb.payload[4]} << 24) |
                            (std::uint32_t{ptb.payload[5]} << 16) |
                            (std::uint32_t{ptb.payload[6]} << 8) |
                            ptb.payload[7];
  EXPECT_EQ(mtu, 1492u);
  EXPECT_EQ(icmpv6_checksum(ptb.header.src, ptb.header.dst, ptb.payload), 0);
}

TEST(IcmpV6Test, ScrubZeroesQuotedDiscsOption) {
  auto offending = Ipv6Packet::make(addr6("2001:db8::1"), addr6("2001:db8::2"),
                                    17, {1, 2, 3, 4});
  DestinationOptionsHeader dopt;
  dopt.options.push_back({kDiscsOptionType, {0xde, 0xad, 0xbe, 0xef}});
  offending.dest_opts = dopt;
  offending.refresh_chain();

  auto te = build_time_exceeded_v6(offending, addr6("2001:db8::99"));
  ASSERT_TRUE(scrub_quoted_mark_v6(te));

  // Re-parse the quoted packet and confirm the option data is zeroed.
  const std::span<const std::uint8_t> quoted(te.payload.data() + 8,
                                             te.payload.size() - 8);
  const auto inner = Ipv6Packet::parse(quoted);
  ASSERT_TRUE(inner.has_value());
  ASSERT_TRUE(inner->dest_opts.has_value());
  EXPECT_EQ(inner->dest_opts->options[0].data,
            (std::vector<std::uint8_t>{0, 0, 0, 0}));
  EXPECT_EQ(icmpv6_checksum(te.header.src, te.header.dst, te.payload), 0);
}

TEST(IcmpV6Test, ScrubIgnoresUnmarkedQuotes) {
  auto offending = Ipv6Packet::make(addr6("::1"), addr6("::2"), 17, {1, 2});
  auto te = build_time_exceeded_v6(offending, addr6("::9"));
  EXPECT_FALSE(scrub_quoted_mark_v6(te));
}

}  // namespace
}  // namespace discs

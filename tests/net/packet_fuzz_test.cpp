// Parameterized fuzz suites: randomized packets must survive
// serialize/parse round trips byte-exactly, and the parsers must never
// crash or accept inconsistent structures on mutated wire data.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/ipv4.hpp"
#include "net/ipv6.hpp"

namespace discs {
namespace {

class PacketFuzz : public ::testing::TestWithParam<std::uint64_t> {};

Ipv4Packet random_v4(Xoshiro256& rng) {
  auto p = Ipv4Packet::make(
      Ipv4Address(static_cast<std::uint32_t>(rng.next())),
      Ipv4Address(static_cast<std::uint32_t>(rng.next())),
      rng.chance(0.5) ? IpProto::kUdp : IpProto::kTcp,
      std::vector<std::uint8_t>(rng.below(64)));
  for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next());
  p.header.ttl = static_cast<std::uint8_t>(rng.next());
  p.header.dscp_ecn = static_cast<std::uint8_t>(rng.next());
  p.header.identification = static_cast<std::uint16_t>(rng.next());
  p.header.flags = static_cast<std::uint8_t>(rng.below(8));
  p.header.fragment_offset = static_cast<std::uint16_t>(rng.next() & 0x1fff);
  p.header.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + p.payload.size());
  p.header.refresh_checksum();
  return p;
}

Ipv6Packet random_v6(Xoshiro256& rng) {
  std::array<std::uint8_t, 16> src{}, dst{};
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : dst) b = static_cast<std::uint8_t>(rng.next());
  // Upper-layer protocols only — 0/43/60 are extension-header numbers and
  // would (correctly) be interpreted as part of the chain.
  static constexpr std::uint8_t kUpperProtos[] = {6, 17, 58, 89, 132, 253};
  auto p = Ipv6Packet::make(Ipv6Address(src), Ipv6Address(dst),
                            kUpperProtos[rng.below(std::size(kUpperProtos))],
                            std::vector<std::uint8_t>(rng.below(64)));
  for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next());
  p.header.traffic_class = static_cast<std::uint8_t>(rng.next());
  p.header.flow_label = static_cast<std::uint32_t>(rng.next()) & 0xfffff;
  p.header.hop_limit = static_cast<std::uint8_t>(rng.next());

  if (rng.chance(0.4)) {
    p.hop_by_hop.assign(6 + 8 * rng.below(3), 0);
    for (auto& b : p.hop_by_hop) b = static_cast<std::uint8_t>(rng.next());
  }
  if (rng.chance(0.5)) {
    DestinationOptionsHeader dopt;
    const std::size_t options = 1 + rng.below(3);
    for (std::size_t k = 0; k < options; ++k) {
      Ipv6Option opt;
      // Avoid Pad1/PadN types: padding is synthesized, not user content.
      opt.type = static_cast<std::uint8_t>(2 + rng.below(60));
      opt.data.resize(rng.below(10));
      for (auto& b : opt.data) b = static_cast<std::uint8_t>(rng.next());
      dopt.options.push_back(std::move(opt));
    }
    p.dest_opts = std::move(dopt);
  }
  if (rng.chance(0.3)) {
    p.routing.assign(6 + 8 * rng.below(2), 0);
    for (auto& b : p.routing) b = static_cast<std::uint8_t>(rng.next());
  }
  p.refresh_chain();
  return p;
}

TEST_P(PacketFuzz, Ipv4RoundTripIsExact) {
  Xoshiro256 rng(GetParam());
  for (int k = 0; k < 200; ++k) {
    const auto p = random_v4(rng);
    const auto wire = p.serialize();
    const auto q = Ipv4Packet::parse(wire);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->serialize(), wire);
    EXPECT_EQ(q->header.src, p.header.src);
    EXPECT_EQ(q->header.flags, p.header.flags);
    EXPECT_EQ(q->header.fragment_offset, p.header.fragment_offset);
    EXPECT_EQ(q->payload, p.payload);
    EXPECT_TRUE(q->checksum_valid());
  }
}

TEST_P(PacketFuzz, Ipv6RoundTripIsExact) {
  Xoshiro256 rng(GetParam() ^ 0xabcdef);
  for (int k = 0; k < 200; ++k) {
    const auto p = random_v6(rng);
    const auto wire = p.serialize();
    ASSERT_EQ(wire.size(), p.wire_size());
    const auto q = Ipv6Packet::parse(wire);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, p);
    EXPECT_EQ(q->serialize(), wire);
  }
}

TEST_P(PacketFuzz, Ipv4ParserRejectsOrAcceptsMutationsWithoutCrashing) {
  Xoshiro256 rng(GetParam() ^ 0x1234);
  for (int k = 0; k < 300; ++k) {
    auto wire = random_v4(rng).serialize();
    // Random byte mutations + truncation.
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      wire[rng.below(wire.size())] = static_cast<std::uint8_t>(rng.next());
    }
    if (rng.chance(0.3)) wire.resize(rng.below(wire.size() + 1));
    const auto parsed = Ipv4Packet::parse(wire);  // must not crash
    if (parsed) {
      // Anything accepted must re-serialize within the original buffer's
      // prefix semantics (header + declared payload).
      EXPECT_LE(parsed->serialize().size(), wire.size() + 0u);
    }
  }
}

TEST_P(PacketFuzz, Ipv6ParserNeverCrashesOnMutations) {
  Xoshiro256 rng(GetParam() ^ 0x9999);
  for (int k = 0; k < 300; ++k) {
    auto wire = random_v6(rng).serialize();
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      wire[rng.below(wire.size())] = static_cast<std::uint8_t>(rng.next());
    }
    if (rng.chance(0.3)) wire.resize(rng.below(wire.size() + 1));
    const auto parsed = Ipv6Packet::parse(wire);  // must not crash
    if (parsed) {
      // Accepted packets must round-trip consistently with themselves.
      const auto rewire = parsed->serialize();
      const auto again = Ipv6Packet::parse(rewire);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *parsed);
    }
  }
}

TEST_P(PacketFuzz, RandomGarbageNeverCrashesEitherParser) {
  Xoshiro256 rng(GetParam() ^ 0xfeed);
  for (int k = 0; k < 500; ++k) {
    std::vector<std::uint8_t> garbage(rng.below(120));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    (void)Ipv4Packet::parse(garbage);
    (void)Ipv6Packet::parse(garbage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace discs
